"""Cross-shard transactions: the 2PC layer end to end, including the fault
windows that motivate prepare-through-the-log and the logged decision."""

import pytest

from repro.protocols.messages import TxnRequest
from repro.shard.cluster import ShardedCluster
from repro.shard.router import ShardRoutedClient
from repro.shard.txn import TxnCluster, TxnSpec, run_txn_experiment
from repro.sim.units import ms, sec
from repro.workload.ycsb import WorkloadConfig
from tests.shard.nemesis import txn_nemesis

WORKLOAD = WorkloadConfig(read_fraction=0.5, conflict_rate=0.0, records=500,
                          value_size=64)


def txn_spec(**overrides) -> TxnSpec:
    defaults = dict(
        protocol="raft", num_shards=2, placement="spread",
        clients_per_region=2, workload=WORKLOAD,
        duration_s=5.0, warmup_s=1.0, cooldown_s=0.5, seed=3,
        check_history=True, txn_size=2, cross_shard_ratio=0.5,
    )
    defaults.update(overrides)
    return TxnSpec(**defaults)


def find_key(cluster, shard: int, start: int = 0) -> str:
    for key_id in range(start, start + 10_000):
        key = f"k{key_id}"
        if cluster.partitioner.shard_of(key) == shard:
            return key
    raise AssertionError(f"no key for shard {shard}")


def manual_client(cluster, name="c_manual", site="oregon") -> ShardRoutedClient:
    """A client that only transacts when told to (stop_at=0 suppresses the
    closed-loop generator)."""
    return ShardRoutedClient(
        name, cluster.sim, cluster.network, site, cluster.router,
        WORKLOAD, cluster.topology.sites, cluster.rng.stream(f"client:{name}"),
        cluster.metrics, stop_at=0, coordinator=f"txnco_{site}")


def owner_version(cluster, key: str) -> int:
    shard = cluster.partitioner.shard_of(key)
    return max(replica.store.version(key)
               for replica in cluster.groups[shard].values())


# -- the closed-loop experiment, fault-free -----------------------------------


def test_txn_experiment_commits_and_stays_safe():
    result = run_txn_experiment(txn_spec())
    assert result.committed_total > 50
    assert result.single_shard > 0 and result.cross_shard > 0
    assert result.commits_2pc > 0
    assert result.acks_lost == 0
    assert result.acks_duplicated == 0
    assert result.duplicate_executions == 0
    assert result.strict_serializable
    assert all(not v for v in result.prefix_violations.values())
    assert result.safe


def test_zero_cross_ratio_never_touches_the_coordinator():
    result = run_txn_experiment(txn_spec(cross_shard_ratio=0.0))
    assert result.cross_shard == 0
    assert result.commits_2pc == 0
    assert result.committed_total > 50
    assert result.safe


def test_txn_layer_is_protocol_agnostic():
    """The same 2PC layer over MultiPaxos groups — the paper's porting
    claim at the composition layer."""
    result = run_txn_experiment(txn_spec(protocol="multipaxos", duration_s=4.0))
    assert result.committed_total > 30
    assert result.cross_shard > 0
    assert result.safe


# -- transact(): the client API ----------------------------------------------


def test_transact_single_shard_is_one_atomic_command():
    cluster = TxnCluster(txn_spec(clients_per_region=0))
    key_a = find_key(cluster, 0)
    key_b = find_key(cluster, 0, start=int(key_a[1:]) + 1)
    client = manual_client(cluster)
    cluster.sim.schedule(ms(10), client.transact,
                         [("put", key_a, "va"), ("put", key_b, "vb")])
    cluster.sim.run(until=sec(2.0))
    assert client.txns_committed == 1
    assert client.single_shard_txns == 1 and client.cross_shard_txns == 0
    leader = cluster.leader_replica(0)
    assert leader.store.read_local(key_a) == "va"
    assert leader.store.read_local(key_b) == "vb"
    # no 2PC ran
    assert all(c.commits == 0 for c in cluster.coordinators)


def test_transact_cross_shard_commits_atomically_with_reads():
    cluster = TxnCluster(txn_spec(clients_per_region=0))
    key0, key1 = find_key(cluster, 0), find_key(cluster, 1)
    client = manual_client(cluster)
    observed = []
    client.on_txn_complete_hooks.append(
        lambda c, txn_id, ops, reads, start, end: observed.append(reads))
    cluster.sim.schedule(ms(10), client.transact,
                         [("put", key0, "v0"), ("put", key1, "v1")])
    cluster.sim.schedule_at(sec(2.0), client.transact,
                            [("get", key0, None), ("get", key1, None)])
    cluster.sim.run(until=sec(4.0))
    assert client.txns_committed == 2
    assert client.cross_shard_txns == 2
    # The read transaction saw BOTH writes (atomicity across groups).
    assert observed[1] == {key0: "v0", key1: "v1"}
    # Writes landed on their owner groups and locks were released.
    assert owner_version(cluster, key0) == 1
    assert owner_version(cluster, key1) == 1
    assert cluster.locks_left() == 0


def test_transact_cross_shard_without_coordinator_raises():
    cluster = TxnCluster(txn_spec(clients_per_region=0))
    key0, key1 = find_key(cluster, 0), find_key(cluster, 1)
    client = manual_client(cluster)
    client.coordinator = None
    with pytest.raises(RuntimeError):
        client.transact([("put", key0, "x"), ("put", key1, "y")])


def test_conflicting_cross_txns_all_commit_exactly_once():
    """Two clients race transactions over the SAME two keys in opposite
    orders — the classic distributed deadlock.  Wait-die must let both
    commit (in some order) with exactly one installed write per ack."""
    cluster = TxnCluster(txn_spec(clients_per_region=0))
    key0, key1 = find_key(cluster, 0), find_key(cluster, 1)
    alice = manual_client(cluster, "c_alice", "oregon")
    bob = manual_client(cluster, "c_bob", "seoul")
    cluster.sim.schedule(ms(10), alice.transact,
                         [("put", key0, "a0"), ("put", key1, "a1")])
    cluster.sim.schedule(ms(10), bob.transact,
                         [("put", key1, "b1"), ("put", key0, "b0")])
    cluster.sim.run(until=sec(8.0))
    assert alice.txns_committed == 1
    assert bob.txns_committed == 1
    # Exactly two installs per key (one per committed txn), zero residue.
    assert owner_version(cluster, key0) == 2
    assert owner_version(cluster, key1) == 2
    assert cluster.locks_left() == 0
    # Atomic orders only: both keys end on the same transaction's values.
    final0 = cluster.leader_replica(0).store.read_local(key0)
    final1 = cluster.leader_replica(1).store.read_local(key1)
    assert (final0, final1) in {("a0", "a1"), ("b0", "b1")}


def test_plain_put_waits_out_a_prepared_lock():
    """A non-transactional PUT on a key locked by a prepared transaction is
    rejected (conflict) and succeeds via the ordinary backoff retry once
    the lock clears — without consuming its dedup slot."""
    cluster = TxnCluster(txn_spec(clients_per_region=0))
    key0, key1 = find_key(cluster, 0), find_key(cluster, 1)
    txn_client = manual_client(cluster, "c_txn", "oregon")
    put_client = manual_client(cluster, "c_put", "ohio")
    cluster.sim.schedule(ms(10), txn_client.transact,
                         [("put", key0, "t0"), ("put", key1, "t1")])
    # Fire the plain PUT while the prepare lock is likely held (the 2PC
    # needs a WAN round trip per phase, so ~350ms in is mid-transaction).
    cluster.sim.schedule_at(ms(350), put_client.transact,
                            [("put", key0, "p0")])
    cluster.sim.run(until=sec(6.0))
    assert txn_client.txns_committed == 1
    assert put_client.txns_committed == 1
    assert owner_version(cluster, key0) == 2
    assert cluster.locks_left() == 0


def test_wait_vote_does_not_unblock_commit_decision():
    """Regression: a participant that voted 'wait' is between commands (no
    entry in `pending`), but the transaction must NOT be treated as
    all-prepared when the other participant's 'yes' arrives — that would
    log a commit decision and commit non-atomically, dropping the waiting
    shard's writes."""
    cluster = TxnCluster(txn_spec(clients_per_region=0))
    coordinator = cluster.coordinators[0]
    key0, key1 = find_key(cluster, 0), find_key(cluster, 1)
    coordinator._start_attempt(
        "c_x:1", None, [("put", key0, "v0"), ("put", key1, "v1")], ts=100)
    state = coordinator._active["c_x:1"]
    assert set(state.pending) == {0, 1}
    # shard 1 says wait (an older txn blocked on a younger holder)...
    coordinator._on_vote(state, 1, {"vote": "wait"})
    assert 1 in state.waiting and 1 not in state.pending
    # ...then shard 0's yes lands inside the re-prepare window
    coordinator._on_vote(state, 0, {"vote": "yes", "reads": {}})
    # the txn must still be preparing, with no decision logged
    assert state.phase == "prepare"
    assert not state.all_prepared
    assert coordinator.commits == 0
    # once the re-prepare fires and votes yes, the decision may proceed
    cluster.sim.run(until=sec(1.0))
    assert state.phase != "prepare" or state.waiting or state.pending


# -- fault windows (nemesis-driven) -------------------------------------------


def test_nemesis_leader_kill_mid_prepare_commits_exactly_once():
    """Kill a participant leader right after the prepare lands: the new
    leader must answer the coordinator's retry from the replicated lock
    table / dedup cache, and the transaction commits exactly once."""
    cluster = TxnCluster(txn_spec(clients_per_region=0))
    key0, key1 = find_key(cluster, 0), find_key(cluster, 1)
    client = manual_client(cluster)
    cluster.sim.schedule(ms(10), client.transact,
                         [("put", key0, "v0"), ("put", key1, "v1")])

    def kill_leader():
        leader = cluster.leader_replica(1)
        if leader.alive:
            leader.crash()
            cluster.sim.schedule(sec(1.2), leader.recover)
    # One WAN round trip (~100-250ms) puts the prepare in g1's log.
    cluster.sim.schedule_at(ms(260), kill_leader)
    cluster.sim.run(until=sec(8.0))
    assert client.txns_committed == 1
    assert owner_version(cluster, key0) == 1
    assert owner_version(cluster, key1) == 1
    assert cluster.locks_left() == 0


def test_nemesis_coordinator_kill_mid_commit_recovers_from_decision_log():
    """Crash the coordinator after it logged the commit decision but (in
    general) before phase 2 finished: recovery must replay the decision
    log, push the commit through, and answer the client's retry from the
    rebuilt cache — exactly one installed write per key."""
    cluster = TxnCluster(txn_spec(clients_per_region=0))
    key0, key1 = find_key(cluster, 0), find_key(cluster, 1)
    client = manual_client(cluster)
    cluster.sim.schedule(ms(10), client.transact,
                         [("put", key0, "v0"), ("put", key1, "v1")])
    coordinator = cluster.coordinators[0]  # txnco_oregon, the client's

    def kill():
        if coordinator.alive:
            coordinator.crash()
            cluster.sim.schedule(sec(1.0), coordinator.recover)
    # Prepare RTT + decide RTT: ~500ms in, the decision is logged and
    # phase 2 is (at most) in flight.
    cluster.sim.schedule_at(ms(520), kill)
    cluster.sim.run(until=sec(12.0))
    assert client.txns_committed == 1
    assert coordinator.recoveries == 1
    assert owner_version(cluster, key0) == 1
    assert owner_version(cluster, key1) == 1
    assert cluster.locks_left() == 0


def test_nemesis_coordinator_kill_mid_prepare_releases_orphan_locks():
    """Crash the coordinator BEFORE it decides: the prepared participant
    holds locks for a transaction nobody will finish.  Recovery's fenced
    TXN_RECOVER must presumed-abort it, releasing the locks, and the
    client's retried transaction then commits exactly once."""
    cluster = TxnCluster(txn_spec(clients_per_region=0))
    key0, key1 = find_key(cluster, 0), find_key(cluster, 1)
    client = manual_client(cluster)
    cluster.sim.schedule(ms(10), client.transact,
                         [("put", key0, "v0"), ("put", key1, "v1")])
    coordinator = cluster.coordinators[0]

    def kill():
        if coordinator.alive:
            coordinator.crash()
            cluster.sim.schedule(sec(1.0), coordinator.recover)
    # ~150ms in: prepares sent (and landing), no decision yet.
    cluster.sim.schedule_at(ms(150), kill)
    cluster.sim.run(until=sec(12.0))
    assert client.txns_committed == 1
    assert coordinator.recoveries == 1
    # exactly-once despite the abort/retry cycle
    assert owner_version(cluster, key0) == 1
    assert owner_version(cluster, key1) == 1
    assert cluster.locks_left() == 0


@pytest.mark.parametrize("seed", range(6))
def test_nemesis_random_faults_keep_txns_safe(seed):
    """Randomized leader kills/partitions plus a coordinator kill under
    50% cross-shard load: every seed must keep the committed history
    strictly serializable with zero lost/duplicated acks and zero
    re-executed writes."""
    spec = txn_spec(seed=seed, duration_s=8.0)
    result = run_txn_experiment(
        spec, nemesis=txn_nemesis(seed, window=(1.0, 5.0)))
    assert result.committed_total > 20
    assert result.acks_lost == 0
    assert result.acks_duplicated == 0
    assert result.duplicate_executions == 0
    assert result.strict_serializable
    assert all(not v for v in result.prefix_violations.values())


# -- windowed committed-reply cache (pipelined sessions) ----------------------


def test_coordinator_reply_cache_is_windowed_by_client_acks():
    """The coordinator's committed-reply cache is the TXN dedup path: it
    must hold every un-acked txn_seq (a retry is answered from it) and
    evict slots the client's `acked_low_water` stamp covers — bounded by
    the pipeline depth instead of growing for the whole run."""
    cluster = TxnCluster(txn_spec(clients_per_region=0, duration_s=8.0))
    client = manual_client(cluster)
    k0, k1 = find_key(cluster, 0), find_key(cluster, 1)
    cluster.sim.schedule(ms(10), client.transact,
                         [("put", k0, "a"), ("put", k1, "b")])
    cluster.sim.run(until=sec(2))
    assert client.txns_committed == 1
    coordinator = next(c for c in cluster.coordinators
                       if c.name == "txnco_oregon")
    assert 1 in coordinator._completed.get("c_manual", {})

    # The next transaction carries acked_low_water=1: slot 1 is evicted
    # on receipt, slot 2 is cached after commit.
    cluster.sim.schedule_at(sec(2), client.transact,
                            [("put", k0, "c"), ("put", k1, "d")])
    cluster.sim.run(until=sec(4))
    assert client.txns_committed == 2
    window = coordinator._completed.get("c_manual", {})
    assert 1 not in window
    assert 2 in window


def test_coordinator_retry_answered_from_windowed_cache():
    """A duplicate TxnRequest for a committed, un-acked txn_seq is answered
    from the cache — not re-executed (version counts stay put)."""
    cluster = TxnCluster(txn_spec(clients_per_region=0, duration_s=8.0))
    client = manual_client(cluster)
    k0, k1 = find_key(cluster, 0), find_key(cluster, 1)
    cluster.sim.schedule(ms(10), client.transact,
                         [("put", k0, "a"), ("put", k1, "b")])
    cluster.sim.run(until=sec(2))
    assert client.txns_committed == 1
    assert owner_version(cluster, k0) == 1

    # Replay the request (a lost-reply retransmit still in the network):
    # same (client, txn_seq), same ops — must hit the cache.
    replay = TxnRequest(client="c_manual", txn_seq=1, ts=0,
                        ops=[["put", k0, "a"], ["put", k1, "b"]])
    cluster.sim.schedule(ms(10), client.send, "txnco_oregon", replay)
    cluster.sim.run(until=sec(3))
    assert owner_version(cluster, k0) == 1  # nothing re-executed
    assert client.txns_committed == 1       # stale reply discarded client-side


def test_retransmit_of_evicted_txn_seq_is_dropped_not_reexecuted():
    """Regression: once the client's acked_low_water stamp evicts a
    committed reply slot, a delayed retransmit of that txn_seq (reorder
    on a non-FIFO network, or a retry racing the ack) used to miss the
    cache and start a FRESH 2PC attempt — re-executing committed writes.
    The per-client eviction floor drops it instead."""
    cluster = TxnCluster(txn_spec(clients_per_region=0, duration_s=10.0))
    client = manual_client(cluster)
    k0, k1 = find_key(cluster, 0), find_key(cluster, 1)
    cluster.sim.schedule(ms(10), client.transact,
                         [("put", k0, "a"), ("put", k1, "b")])
    cluster.sim.run(until=sec(2))
    cluster.sim.schedule_at(sec(2), client.transact,
                            [("put", k0, "c"), ("put", k1, "d")])
    cluster.sim.run(until=sec(4))
    assert client.txns_committed == 2
    coordinator = next(c for c in cluster.coordinators
                       if c.name == "txnco_oregon")
    assert 1 not in coordinator._completed.get("c_manual", {})  # evicted

    # The delayed retransmit of evicted txn 1 arrives AFTER the eviction.
    replay = TxnRequest(client="c_manual", txn_seq=1, ts=0,
                        ops=[["put", k0, "a"], ["put", k1, "b"]])
    cluster.sim.schedule(ms(10), client.send, "txnco_oregon", replay)
    cluster.sim.run(until=sec(6))
    assert client.txns_committed == 2
    # txn 1's writes executed exactly once: versions reflect txn1 + txn2
    assert owner_version(cluster, k0) == 2
    assert owner_version(cluster, k1) == 2
    # and no fresh attempt was started for the stale id
    assert "c_manual:1" not in coordinator._active
