"""Shard-aware routing: local-first hops, redirects, retry reuse."""

from repro.metrics.recorder import MetricsRecorder
from repro.protocols.messages import ClientReply, ClientRequest
from repro.shard import ShardedSpec
from repro.shard.cluster import ShardedCluster
from repro.shard.partition import HashRangePartitioner, Partitioner
from repro.shard.router import ShardRoutedClient, ShardRouter
from repro.sim.events import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Node, NodeCosts
from repro.sim.rng import SplitRng
from repro.sim.topology import symmetric_lan
from repro.sim.units import ms, sec
from repro.workload.ycsb import WorkloadConfig

WORKLOAD = WorkloadConfig(read_fraction=0.5, conflict_rate=0.0, records=1000)


def build_cluster(num_shards=2, **overrides):
    defaults = dict(
        protocol="raft", num_shards=num_shards, placement="spread",
        clients_per_region=0,  # tests attach their own clients
        workload=WORKLOAD, duration_s=3.0, warmup_s=0.5, cooldown_s=0.5,
        seed=5,
    )
    defaults.update(overrides)
    return ShardedCluster(ShardedSpec(**defaults))


def attach_client(cluster, router=None, site="oregon", name="c_test"):
    router = router or cluster.router
    return ShardRoutedClient(
        name, cluster.sim, cluster.network, site, router, WORKLOAD,
        cluster.topology.sites, cluster.rng.stream(f"client:{name}"),
        cluster.metrics, stop_at=sec(2.5),
    )


class SwappedPartitioner(Partitioner):
    """A deliberately *wrong* ownership map (a stale routing table)."""

    def __init__(self, inner: Partitioner) -> None:
        self.inner = inner
        self.num_shards = inner.num_shards

    def shard_of(self, key: str) -> int:
        return (self.inner.shard_of(key) + 1) % self.num_shards


def test_first_hop_is_always_local():
    cluster = build_cluster()
    client = attach_client(cluster, site="seoul")
    cluster.sim.run(until=sec(3.0))
    assert client.completed > 0
    for record in cluster.metrics.records:
        # the contacted server is the owning shard's replica in the
        # client's own site
        assert record.server.endswith("_r_seoul")


def test_routing_agrees_with_ownership_guard():
    cluster = build_cluster()
    client = attach_client(cluster)
    cluster.sim.run(until=sec(3.0))
    assert client.completed > 0
    assert client.redirects == 0
    assert cluster.filtered_count() == 0


def test_stale_router_is_redirected_not_lost():
    cluster = build_cluster()
    stale = ShardRouter(SwappedPartitioner(cluster.partitioner),
                        cluster.router.local_replica)
    client = attach_client(cluster, router=stale)
    cluster.sim.run(until=sec(3.0))
    # Every request first hits the wrong group, gets a shard_hint back,
    # and is re-sent to the right one — same sequence number, no loss.
    assert client.completed > 0
    assert client.redirects >= client.completed
    assert cluster.filtered_count() == 0
    # At-most-once held through the redirects: monotone seqs, one record
    # per completion.
    assert len(cluster.metrics.records) == client.completed


def test_out_of_table_hint_degrades_to_retry_not_crash():
    # A router whose table only knows shard 0 of a 2-shard cluster: hints
    # pointing at shard 1 cannot be followed, so the client falls back to
    # the generic backoff-retry instead of raising.
    cluster = build_cluster()
    narrow = ShardRouter(HashRangePartitioner(1),
                         {0: cluster.router.local_replica[0]})
    client = attach_client(cluster, router=narrow)
    cluster.sim.run(until=sec(3.0))  # must not raise inside the event loop
    # The unroutable key is stuck in harmless backoff-retry (alive, same
    # seq, no redirect taken), and nothing ever reached the wrong store.
    assert client.alive
    assert client.redirects == 0
    assert client.in_flight is not None
    assert client.seq == client.completed + 1
    assert cluster.filtered_count() == 0


class DisagreeingServer(Node):
    """A server with a frozen mid-reshard ownership view: it rejects every
    request with a hint at some *other* shard.  Two of these pointing at
    each other reproduce the redirect ping-pong."""

    def __init__(self, *args, hint, **kwargs):
        kwargs.setdefault("costs", NodeCosts(per_message=0, per_byte=0))
        super().__init__(*args, **kwargs)
        self.hint = hint
        self.accept = False
        self.seen = 0

    def on_message(self, src, message):
        if not isinstance(message, ClientRequest):
            return
        self.seen += 1
        command = message.command
        if self.accept:
            self.send(src, ClientReply(request_id=command.request_id,
                                       ok=True, value="x", server=self.name))
        else:
            self.send(src, ClientReply(request_id=command.request_id,
                                       ok=False, server=self.name,
                                       shard_hint=self.hint))


def build_pingpong():
    sim = Simulator()
    net = Network(sim, symmetric_lan(3, rtt_ms_value=1.0), rng=SplitRng(4),
                  config=NetworkConfig())
    s0 = DisagreeingServer("s0", sim, net, hint=1)  # "shard 1 owns it"
    s1 = DisagreeingServer("s1", sim, net, hint=0)  # "shard 0 owns it"
    router = ShardRouter(HashRangePartitioner(2),
                         {0: {"s2": "s0"}, 1: {"s2": "s1"}})
    metrics = MetricsRecorder()
    client = ShardRoutedClient(
        "c0", sim, net, "s2", router,
        WorkloadConfig(read_fraction=0.0, conflict_rate=0.0, records=1),
        ["s2"], SplitRng(9).stream("c"), metrics)
    return sim, s0, s1, client, metrics


def test_redirect_pingpong_is_capped_and_falls_back_to_backoff():
    """Regression: two servers with disagreeing ownership views (exactly
    the mid-reshard state) used to bounce one request between their groups
    indefinitely at network speed.  The hop cap breaks each bounce run and
    falls back to the 20 ms backoff retry."""
    sim, s0, s1, client, metrics = build_pingpong()
    sim.run(until=sec(1))
    assert client.completed == 0  # both sides still deny ownership
    # Bounded: at most `cap` hops per ~20 ms backoff round (pre-fix the
    # request ping-pongs once per RTT, ~1000 redirects in this window).
    assert client.capped_redirects >= 1
    assert client.redirects <= 160
    assert metrics.counters["capped_redirects"] == client.capped_redirects
    assert metrics.counters["redirects"] == client.redirects
    # The client is still healthy and retrying the SAME sequence number.
    assert client.alive and client.in_flight is not None
    assert client.seq == 1


def test_capped_redirect_recovers_once_ownership_settles():
    """After the cap falls back to backoff, the client must still complete
    the command once one side starts serving (migration landed)."""
    sim, s0, s1, client, metrics = build_pingpong()
    sim.run(until=ms(500))
    s1.accept = True  # the recipient finished importing the range
    sim.run(until=sec(1))
    assert client.completed >= 1
    # at-most-once held: no sequence number was burned by the storm
    assert client.seq == client.completed + (1 if client.in_flight else 0)


def test_redirected_request_lands_on_owner():
    cluster = build_cluster()
    stale = ShardRouter(SwappedPartitioner(cluster.partitioner),
                        cluster.router.local_replica)
    client = attach_client(cluster, router=stale)
    served = []
    client.on_complete_hooks.append(
        lambda command, reply, start, end: served.append((command.key, reply.server)))
    cluster.sim.run(until=sec(3.0))
    assert served
    for key, server in served:
        # despite the stale table, the answering server is in the true
        # owner's group
        shard = int(server.split("_", 1)[0][1:])
        assert shard == cluster.partitioner.shard_of(key)
