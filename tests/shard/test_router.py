"""Shard-aware routing: local-first hops, redirects, retry reuse."""

from repro.shard import ShardedSpec
from repro.shard.cluster import ShardedCluster
from repro.shard.partition import HashRangePartitioner, Partitioner
from repro.shard.router import ShardRoutedClient, ShardRouter
from repro.sim.units import sec
from repro.workload.ycsb import WorkloadConfig

WORKLOAD = WorkloadConfig(read_fraction=0.5, conflict_rate=0.0, records=1000)


def build_cluster(num_shards=2, **overrides):
    defaults = dict(
        protocol="raft", num_shards=num_shards, placement="spread",
        clients_per_region=0,  # tests attach their own clients
        workload=WORKLOAD, duration_s=3.0, warmup_s=0.5, cooldown_s=0.5,
        seed=5,
    )
    defaults.update(overrides)
    return ShardedCluster(ShardedSpec(**defaults))


def attach_client(cluster, router=None, site="oregon", name="c_test"):
    router = router or cluster.router
    return ShardRoutedClient(
        name, cluster.sim, cluster.network, site, router, WORKLOAD,
        cluster.topology.sites, cluster.rng.stream(f"client:{name}"),
        cluster.metrics, stop_at=sec(2.5),
    )


class SwappedPartitioner(Partitioner):
    """A deliberately *wrong* ownership map (a stale routing table)."""

    def __init__(self, inner: Partitioner) -> None:
        self.inner = inner
        self.num_shards = inner.num_shards

    def shard_of(self, key: str) -> int:
        return (self.inner.shard_of(key) + 1) % self.num_shards


def test_first_hop_is_always_local():
    cluster = build_cluster()
    client = attach_client(cluster, site="seoul")
    cluster.sim.run(until=sec(3.0))
    assert client.completed > 0
    for record in cluster.metrics.records:
        # the contacted server is the owning shard's replica in the
        # client's own site
        assert record.server.endswith("_r_seoul")


def test_routing_agrees_with_ownership_guard():
    cluster = build_cluster()
    client = attach_client(cluster)
    cluster.sim.run(until=sec(3.0))
    assert client.completed > 0
    assert client.redirects == 0
    assert cluster.filtered_count() == 0


def test_stale_router_is_redirected_not_lost():
    cluster = build_cluster()
    stale = ShardRouter(SwappedPartitioner(cluster.partitioner),
                        cluster.router.local_replica)
    client = attach_client(cluster, router=stale)
    cluster.sim.run(until=sec(3.0))
    # Every request first hits the wrong group, gets a shard_hint back,
    # and is re-sent to the right one — same sequence number, no loss.
    assert client.completed > 0
    assert client.redirects >= client.completed
    assert cluster.filtered_count() == 0
    # At-most-once held through the redirects: monotone seqs, one record
    # per completion.
    assert len(cluster.metrics.records) == client.completed


def test_out_of_table_hint_degrades_to_retry_not_crash():
    # A router whose table only knows shard 0 of a 2-shard cluster: hints
    # pointing at shard 1 cannot be followed, so the client falls back to
    # the generic backoff-retry instead of raising.
    cluster = build_cluster()
    narrow = ShardRouter(HashRangePartitioner(1),
                         {0: cluster.router.local_replica[0]})
    client = attach_client(cluster, router=narrow)
    cluster.sim.run(until=sec(3.0))  # must not raise inside the event loop
    # The unroutable key is stuck in harmless backoff-retry (alive, same
    # seq, no redirect taken), and nothing ever reached the wrong store.
    assert client.alive
    assert client.redirects == 0
    assert client.in_flight is not None
    assert client.seq == client.completed + 1
    assert cluster.filtered_count() == 0


def test_redirected_request_lands_on_owner():
    cluster = build_cluster()
    stale = ShardRouter(SwappedPartitioner(cluster.partitioner),
                        cluster.router.local_replica)
    client = attach_client(cluster, router=stale)
    served = []
    client.on_complete_hooks.append(
        lambda command, reply, start, end: served.append((command.key, reply.server)))
    cluster.sim.run(until=sec(3.0))
    assert served
    for key, server in served:
        # despite the stale table, the answering server is in the true
        # owner's group
        shard = int(server.split("_", 1)[0][1:])
        assert shard == cluster.partitioner.shard_of(key)
