"""Hash-range partitioning."""

import pytest

from repro.shard.partition import HASH_SPACE, HashRangePartitioner, key_point
from repro.workload.ycsb import WorkloadConfig


def test_ownership_is_stable_and_total():
    p = HashRangePartitioner(4)
    for key_id in range(200):
        key = WorkloadConfig.key_name(key_id)
        shard = p.shard_of(key)
        assert 0 <= shard < 4
        assert p.shard_of(key) == shard  # deterministic
        assert p.owns(shard, key)
        assert not any(p.owns(other, key) for other in range(4) if other != shard)


def test_ranges_tile_the_hash_space():
    p = HashRangePartitioner(3)
    ranges = [p.range_of(shard) for shard in range(3)]
    assert ranges[0].start == 0
    assert ranges[-1].stop == HASH_SPACE
    for left, right in zip(ranges, ranges[1:]):
        assert left.stop == right.start
    for key in ("hot", "k0", "k99999"):
        assert key_point(key) in ranges[p.shard_of(key)]


def test_uniform_keys_balance_across_shards():
    p = HashRangePartitioner(4)
    keys = [WorkloadConfig.key_name(i) for i in range(10_000)]
    counts = p.load_split(keys)
    assert sum(counts) == len(keys)
    for count in counts:
        assert 0.8 * len(keys) / 4 < count < 1.2 * len(keys) / 4


def test_predicate_matches_shard_of():
    p = HashRangePartitioner(2)
    owns_0 = p.predicate(0)
    for key_id in range(50):
        key = WorkloadConfig.key_name(key_id)
        assert owns_0(key) == (p.shard_of(key) == 0)


def test_single_shard_owns_everything():
    p = HashRangePartitioner(1)
    assert p.shard_of("anything") == 0
    assert p.range_of(0) == range(0, HASH_SPACE)


def test_invalid_arguments():
    with pytest.raises(ValueError):
        HashRangePartitioner(0)
    with pytest.raises(ValueError):
        HashRangePartitioner(2).range_of(2)
