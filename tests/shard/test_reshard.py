"""Live resharding: transition plans, epoch ownership, and the full
migration under load."""

import json

from repro.protocols.messages import ShardMap
from repro.protocols.types import Command, OpType
from repro.shard import ReshardSpec, run_reshard_experiment
from repro.shard.cluster import ShardedCluster, ShardedSpec
from repro.shard.partition import (
    HASH_SPACE,
    HashRangePartitioner,
    VersionedPartitioner,
    add_range,
    plan_transition,
    ranges_contain,
    subtract_range,
)
from repro.shard.reshard import ShardOwnership
from repro.shard.router import ShardRouter, ShardRoutedClient
from repro.sim.units import sec
from repro.workload.ycsb import WorkloadConfig

WORKLOAD = WorkloadConfig(read_fraction=0.5, conflict_rate=0.0, records=1000,
                          value_size=64)


# -- transition plans ---------------------------------------------------------


def test_split_plan_2_to_4():
    old, new = HashRangePartitioner(2), HashRangePartitioner(4)
    moves = plan_transition(old, new)
    quarter = HASH_SPACE // 4
    assert [(m.donor, m.recipient, m.start, m.end) for m in moves] == [
        (0, 1, quarter, 2 * quarter),
        (1, 2, 2 * quarter, 3 * quarter),
        (1, 3, 3 * quarter, HASH_SPACE),
    ]


def test_merge_plan_4_to_2():
    moves = plan_transition(HashRangePartitioner(4), HashRangePartitioner(2))
    quarter = HASH_SPACE // 4
    assert [(m.donor, m.recipient, m.start, m.end) for m in moves] == [
        (1, 0, quarter, 2 * quarter),
        (2, 1, 2 * quarter, 3 * quarter),
        (3, 1, 3 * quarter, HASH_SPACE),
    ]


def test_identity_plan_is_empty():
    assert plan_transition(HashRangePartitioner(3), HashRangePartitioner(3)) == []


def test_plan_covers_every_ownership_change():
    """Property: after applying the plan's moves to the old ranges, every
    shard owns exactly its new range."""
    old, new = HashRangePartitioner(3), HashRangePartitioner(5)
    moves = plan_transition(old, new)
    ranges = {s: [(old.range_of(s).start, old.range_of(s).stop)]
              for s in range(old.num_shards)}
    for s in range(old.num_shards, new.num_shards):
        ranges[s] = []
    for m in moves:
        ranges[m.donor] = subtract_range(ranges[m.donor], m.start, m.end)
        ranges[m.recipient] = add_range(ranges[m.recipient], m.start, m.end)
    for s in range(new.num_shards):
        span = new.range_of(s)
        assert ranges[s] == [(span.start, span.stop)]


def test_versioned_partitioner_advances_epoch():
    v0 = VersionedPartitioner.initial(2)
    assert v0.epoch == 0
    v1, moves = v0.advanced(4)
    assert v1.epoch == 1 and v1.num_shards == 4
    assert len(moves) == 3
    assert v0.num_shards == 2  # immutable snapshot


# -- range set algebra --------------------------------------------------------


def test_range_algebra():
    ranges = [(0, 100)]
    ranges = subtract_range(ranges, 25, 50)
    assert ranges == [(0, 25), (50, 100)]
    ranges = add_range(ranges, 25, 50)
    assert ranges == [(0, 100)]
    assert ranges_contain(ranges, 99) and not ranges_contain(ranges, 100)
    assert subtract_range([(0, 10)], 0, 10) == []


# -- per-replica ownership ----------------------------------------------------


def meta(lo, hi, epoch=1, num_shards=4):
    return json.dumps({"lo": lo, "hi": hi, "epoch": epoch,
                       "num_shards": num_shards})


def test_ownership_advances_on_applied_migrations():
    owner = ShardOwnership(0, VersionedPartitioner.initial(2))
    assert owner.epoch == 0
    quarter = HASH_SPACE // 4
    out = Command(op=OpType.MIGRATE_OUT, key="r",
                  value=meta(quarter, 2 * quarter), client_id="__reshard__",
                  seq=1)
    owner.on_apply("g0_r_x", 0, out)
    assert owner.epoch == 1
    assert owner.ranges == [(0, quarter)]
    # idempotent under dedup-suppressed duplicates
    owner.on_apply("g0_r_x", 0, out)
    assert owner.ranges == [(0, quarter)]


def test_new_group_owns_nothing_until_import():
    target = VersionedPartitioner(HashRangePartitioner(4), epoch=1)
    owner = ShardOwnership(2, target, owned=False)
    assert owner.ranges == []
    span = target.range_of(2)
    probe = Command(op=OpType.GET, key="k1", client_id="c", seq=1)
    # pre-import: the guard hints (possibly at itself — the router's hop
    # cap turns that into backoff), never claims to serve
    assert owner.guard(probe) is not None
    inn = Command(op=OpType.MIGRATE_IN, key="r",
                  value=meta(span.start, span.stop), client_id="__reshard__",
                  seq=1)
    owner.on_apply("g2_r_x", 0, inn)
    assert owner.ranges == [(span.start, span.stop)]
    assert owner.shard_map() == ShardMap(epoch=1, num_shards=4)


# -- the live transition, end to end -----------------------------------------


def reshard_spec(**overrides):
    defaults = dict(
        protocol="raft", num_shards=2, placement="spread",
        clients_per_region=3, workload=WORKLOAD,
        duration_s=5.0, warmup_s=1.0, cooldown_s=0.5, seed=3,
        check_history=True, reshard_to=4, reshard_at_s=1.5,
    )
    defaults.update(overrides)
    return ReshardSpec(**defaults)


def test_live_split_loses_and_duplicates_nothing():
    result = run_reshard_experiment(reshard_spec())
    assert result.reshard_completed
    assert result.moves == 3
    assert result.acks_lost == 0
    assert result.acks_duplicated == 0
    # no acknowledged write executed twice anywhere (store versions on the
    # final owners match the distinct acked PUTs)
    assert result.duplicate_executions == 0
    assert result.completed > 0
    assert result.linearizable
    assert set(result.violations) == {0, 1, 2, 3}
    # clients learned the new map from servers (no out-of-band config push)
    assert result.final_epoch == 1


def test_after_split_stores_hold_only_new_map_keys():
    spec = reshard_spec()
    cluster = ShardedCluster(spec)
    cluster.reshard(spec.reshard_to, at=sec(spec.reshard_at_s))
    cluster.sim.run(until=sec(spec.duration_s))
    assert cluster.reshard_completed_at is not None
    final = cluster.partitioner
    assert final.epoch == 1 and final.num_shards == 4
    for shard, replicas in cluster.groups.items():
        for replica in replicas.values():
            for key in replica.store.snapshot():
                assert final.shard_of(key) == shard
    # the new groups actually received data
    assert any(len(replica.store) > 0
               for replica in cluster.groups[2].values())
    assert any(len(replica.store) > 0
               for replica in cluster.groups[3].values())


def test_merge_returns_ranges_to_surviving_groups():
    spec = reshard_spec(num_shards=4, reshard_to=2, duration_s=5.0)
    result = run_reshard_experiment(spec)
    assert result.reshard_completed
    assert result.acks_lost == 0
    assert result.acks_duplicated == 0
    assert result.duplicate_executions == 0
    assert result.linearizable


def test_reshard_while_in_progress_rejected():
    import pytest

    spec = reshard_spec()
    cluster = ShardedCluster(spec)
    cluster.reshard(4)
    with pytest.raises(RuntimeError):
        cluster.reshard(8)


def test_mencius_reshard_raises_unsupported_protocol():
    """Leaderless groups cannot serve MIGRATE_OUT/IN (there is no leader
    for the coordinator's retries to converge on, so the transition would
    silently wedge) — pin the behavior: a clear error at reshard time,
    both immediate and scheduled, and no coordinator is ever created."""
    import pytest

    from repro.shard.cluster import UnsupportedProtocolError

    spec = reshard_spec(protocol="mencius", clients_per_region=1,
                        duration_s=1.0)
    cluster = ShardedCluster(spec)
    with pytest.raises(UnsupportedProtocolError, match="mencius"):
        cluster.reshard(4)
    with pytest.raises(UnsupportedProtocolError, match="leaderless"):
        cluster.reshard(4, at=sec(0.5))
    assert cluster.coordinator is None
    assert cluster.versioned.epoch == 0
    # the group still serves plain traffic untouched by the failed request
    cluster.sim.run(until=sec(1.0))
    assert len(cluster.metrics.records) > 0


# -- stale routing tables across an epoch boundary ---------------------------


def snapshot_router(cluster):
    """A routing table frozen at the cluster's *current* epoch (a client
    configured before the reshard)."""
    return ShardRouter(cluster.versioned,
                       {shard: dict(table)
                        for shard, table in cluster.router.local_replica.items()},
                       sites=cluster.topology.sites)


def test_stale_epoch_client_repaired_by_shipped_map():
    """The redirect path the PR-1 docstring admitted 'never fires' with a
    fresh table: a client built against epoch 0 after the cluster moved to
    epoch 1 pays one extra hop, receives the new map with the redirect,
    and routes correctly from then on."""
    spec = reshard_spec(clients_per_region=0, duration_s=6.0)
    cluster = ShardedCluster(spec)
    old_router = snapshot_router(cluster)
    cluster.reshard(4)
    cluster.sim.run(until=sec(2.0))  # migration completes with no load
    assert cluster.reshard_completed_at is not None

    client = ShardRoutedClient(
        "c_stale", cluster.sim, cluster.network, "oregon", old_router,
        WORKLOAD, cluster.topology.sites, cluster.rng.stream("client:stale"),
        cluster.metrics, stop_at=sec(5.5))
    cluster.sim.run(until=sec(6.0))

    assert client.completed > 10
    # the first misrouted request paid exactly one extra hop, which
    # shipped the epoch-1 map and repaired the whole table
    assert 1 <= client.redirects <= 3
    assert client.capped_redirects == 0
    assert old_router.epoch == 1
    assert old_router.num_shards == 4
    assert cluster.metrics.counters.get("redirects", 0) == client.redirects
    # after the guard fix nothing ever reached a store that does not own
    # its key
    assert cluster.filtered_count() == 0


def test_stale_epoch_request_lands_on_new_owner():
    spec = reshard_spec(clients_per_region=0, duration_s=6.0)
    cluster = ShardedCluster(spec)
    old_router = snapshot_router(cluster)
    cluster.reshard(4)
    cluster.sim.run(until=sec(2.0))

    client = ShardRoutedClient(
        "c_stale", cluster.sim, cluster.network, "seoul", old_router,
        WORKLOAD, cluster.topology.sites, cluster.rng.stream("client:stale2"),
        cluster.metrics, stop_at=sec(5.5))
    served = []
    client.on_complete_hooks.append(
        lambda command, reply, start, end: served.append((command.key,
                                                          reply.server)))
    cluster.sim.run(until=sec(6.0))
    assert served
    for key, server in served:
        shard = int(server.split("_", 1)[0][1:])
        assert shard == cluster.partitioner.shard_of(key)
