"""Shared fixtures for the test suite."""

import pytest

from repro.sim.events import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.rng import SplitRng
from repro.sim.topology import ec2_five_regions, symmetric_lan


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def lan(sim):
    """A 5-node LAN network (sub-ms RTT), deterministic."""
    topology = symmetric_lan(5, rtt_ms_value=1.0)
    return Network(sim, topology, rng=SplitRng(7), config=NetworkConfig())


@pytest.fixture
def wan(sim):
    """The paper's 5-region EC2 topology."""
    return Network(sim, ec2_five_regions(jitter_fraction=0.0), rng=SplitRng(7),
                   config=NetworkConfig())
