"""Sim profiler: attach/detach, kind classification, ranked report."""

import pytest

from repro.bench.experiments import pipeline_spec
from repro.bench.harness import run_experiment
from repro.obs import SimProfiler
from repro.sim.events import Simulator
from repro.sim.units import ms


def _work():
    sum(range(100))


def test_detached_by_default():
    sim = Simulator()
    assert sim.profiler is None
    sim.schedule(ms(1), _work)
    sim.run(until=ms(2))
    assert sim.events_processed == 1


def test_attach_counts_and_times_events():
    sim = Simulator()
    profiler = SimProfiler().attach(sim)
    for i in range(5):
        sim.schedule(ms(i + 1), _work)
    sim.run(until=ms(10))
    assert profiler.events == 5
    assert profiler.wall_s > 0.0
    assert profiler.by_kind["_work"][0] == 5


def test_detach_restores_plain_dispatch():
    sim = Simulator()
    profiler = SimProfiler().attach(sim)
    sim.schedule(ms(1), _work)
    sim.run(until=ms(2))
    profiler.detach(sim)
    assert sim.profiler is None
    sim.schedule(ms(3), _work)
    sim.run(until=ms(4))
    assert profiler.events == 1  # the post-detach event was not profiled


def test_report_is_ranked_and_shares_sum_to_one():
    sim = Simulator()
    profiler = SimProfiler().attach(sim)

    def cheap():
        pass

    for i in range(10):
        sim.schedule(ms(i + 1), _work if i % 2 else cheap)
    sim.run(until=ms(20))
    report = profiler.report()
    assert {row["kind"] for row in report} >= {"_work"}
    walls = [row["wall_s"] for row in report]
    assert walls == sorted(walls, reverse=True)
    assert sum(row["share"] for row in report) == pytest.approx(1.0)
    assert profiler.report(top=1) == report[:1]


def test_render_mentions_totals():
    sim = Simulator()
    profiler = SimProfiler().attach(sim)
    sim.schedule(ms(1), _work)
    sim.run(until=ms(2))
    text = profiler.render()
    assert text.startswith("SimProfiler: 1 events")
    assert "_work" in text


@pytest.fixture(scope="module")
def profiled_result():
    spec = pipeline_spec(0.3, seed=3, protocol="raft", depth=4).with_(obs=True)
    return run_experiment(spec)


def test_cluster_run_classifies_kinds(profiled_result):
    """On a real run the dispatch split the refactor needs is visible:
    message handling per type, delivery, and timers are separate rows."""
    profiler = profiled_result.obs.profiler
    assert profiler is not None and profiler.events > 0
    kinds = set(profiler.by_kind)
    assert any(k.startswith("handle:") for k in kinds)
    assert any(k.startswith("deliver:") for k in kinds)
    assert any(k.startswith("timer:") for k in kinds)
    assert "handle:AppendEntries" in kinds  # the replication fast path
    node_rows = profiler.node_report()
    assert node_rows and all(row["count"] > 0 for row in node_rows)
