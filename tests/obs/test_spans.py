"""Span reconstruction and tail budgets over synthetic phase records."""

from repro.metrics.stats import percentile
from repro.obs import PHASE_KIND, Span, SpanReconstructor, tail_budget
from repro.sim.trace import TraceLog

#: One clean leader-path request: (dt_us, phase, node).
REQUEST = (
    (0, "submit", "c"), (10, "admit", "c"), (12, "send", "c"),
    (40, "server_recv", "r1"), (41, "append", "r1"),
    (90, "commit", "r1"), (91, "reply", "r1"), (120, "complete", "c"),
)


def _log_request(log, trace, t0, phases=REQUEST):
    for dt, phase, node in phases:
        log.record(t0 + dt, node, PHASE_KIND, trace=trace, phase=phase)


def make_log(n=3, spacing=1000):
    log = TraceLog(enabled=True)
    for i in range(n):
        _log_request(log, f"c:{i}", i * spacing)
    return log


def test_join_by_trace():
    recon = SpanReconstructor(make_log(3))
    spans = recon.spans()
    assert len(spans) == 3
    assert [s.trace for s in spans] == ["c:0", "c:1", "c:2"]
    assert all(len(s.events) == len(REQUEST) for s in spans)
    assert spans[0].phases == [phase for _, phase, _ in REQUEST]


def test_non_phase_records_are_ignored():
    log = make_log(1)
    log.record(5, "net", "send", dst="r1")  # a plain trace record
    assert len(SpanReconstructor(log).spans()) == 1


def test_phase_durations_sum_to_latency_exactly():
    for span in SpanReconstructor(make_log(4)).spans():
        assert span.monotonic
        assert span.latency_us == 120
        assert sum(span.phase_durations().values()) == span.latency_us
        assert sum(span.budget().values()) == span.latency_us


def test_budget_buckets():
    span = SpanReconstructor(make_log(1)).spans()[0]
    budget = span.budget()
    # submit 10 + admit 2; send 28 + reply 29; server_recv 1; append 49;
    # commit 1 — from the REQUEST offsets above.
    assert budget == {"queueing": 12, "transport": 57, "handling": 1,
                      "replication": 49, "apply": 1}


def test_complete_only_filtering():
    log = make_log(2)
    # A request still in flight when the run ended: no `complete` record.
    _log_request(log, "c:cut", 9000, REQUEST[:-1])
    recon = SpanReconstructor(log)
    assert len(recon.spans()) == 2
    assert len(recon.spans(complete_only=False)) == 3
    assert [s.trace for s in recon.incomplete()] == ["c:cut"]


def test_retry_accumulates_into_one_span():
    log = TraceLog(enabled=True)
    _log_request(log, "c:0", 0, (
        (0, "submit", "c"), (5, "admit", "c"), (6, "send", "c"),
        (30, "reject", "c"), (80, "send", "c"), (110, "server_recv", "r2"),
        (111, "append", "r2"), (160, "commit", "r2"), (161, "reply", "r2"),
        (190, "complete", "c"),
    ))
    (span,) = SpanReconstructor(log).spans()
    assert span.attempts == 2
    durations = span.phase_durations()
    assert durations["send"] == 24 + 30  # both attempts accumulate
    assert durations["reject"] == 50  # the backoff interval
    assert span.budget()["retry"] == 50
    assert sum(durations.values()) == span.latency_us == 190


def test_tail_budget_percentile_names_and_exemplars():
    spans = [Span(trace=f"t{i}", events=[(0, "submit", "c"),
                                         (i, "complete", "c")])
             for i in range(1, 1001)]
    report = tail_budget(spans)
    assert list(report) == ["p50", "p99", "p999"]
    latencies = [s.latency_us for s in spans]
    for name, pct in (("p50", 50.0), ("p99", 99.0), ("p999", 99.9)):
        entry = report[name]
        assert entry["latency_us"] == percentile(latencies, pct)
        assert sum(entry["phases_us"].values()) == entry["latency_us"]


def test_tail_budget_empty_and_incomplete_only():
    assert tail_budget([]) == {}
    truncated = [Span(trace="t", events=[(0, "submit", "c"),
                                         (5, "send", "c")])]
    assert tail_budget(truncated) == {}
