"""Gauge sampling: cadence, stop bound, and the standard cluster probes."""

import pytest

from repro.bench.experiments import pipeline_spec
from repro.bench.harness import run_experiment
from repro.metrics.recorder import MetricsRecorder
from repro.obs import GaugeSampler
from repro.sim.events import Simulator
from repro.sim.units import ms, sec


def test_sampler_cadence():
    sim, metrics = Simulator(), MetricsRecorder()
    sampler = GaugeSampler(sim, metrics, interval_us=ms(10))
    ticks = iter(range(1000))
    sampler.add("depth", lambda: next(ticks))
    sampler.start(stop_at=ms(100))
    sim.run(until=ms(100))
    samples = metrics.gauges["depth"]
    assert len(samples) == 10
    assert [t for t, _ in samples] == [ms(10) * i for i in range(1, 11)]
    assert [v for _, v in samples] == [float(i) for i in range(10)]


def test_sampler_stop_at_bounds_the_tick():
    """The self-rescheduling tick must not outlive `stop_at`, or a bounded
    sim.run(until=...) horizon would never drain."""
    sim, metrics = Simulator(), MetricsRecorder()
    sampler = GaugeSampler(sim, metrics, interval_us=ms(10))
    sampler.add("x", lambda: 0.0)
    sampler.start(stop_at=ms(50))
    sim.run(until=sec(10))  # a horizon far past stop_at
    # Unbounded, the tick would have fired 1000 times to the horizon.
    assert sampler.samples_taken == 5
    assert all(t <= ms(50) for t, _ in metrics.gauges["x"])


def test_sampler_start_is_idempotent():
    sim, metrics = Simulator(), MetricsRecorder()
    sampler = GaugeSampler(sim, metrics, interval_us=ms(10))
    sampler.add("x", lambda: 1.0)
    sampler.start(stop_at=ms(30))
    sampler.start(stop_at=ms(30))
    sim.run(until=ms(30))
    assert len(metrics.gauges["x"]) == 3  # not doubled


def test_gauge_summary():
    metrics = MetricsRecorder()
    for t, v in enumerate([1.0, 5.0, 3.0]):
        metrics.gauge("q", t, v)
    summary = metrics.gauge_summary("q")
    assert summary["count"] == 3 and summary["max"] == 5.0
    assert metrics.gauge_summary("missing")["count"] == 0


def test_merge_concatenates_gauges():
    a, b = MetricsRecorder(), MetricsRecorder()
    a.gauge("q", 1, 1.0)
    b.gauge("q", 2, 2.0)
    b.gauge("r", 2, 9.0)
    merged = MetricsRecorder.merge([a, b])
    assert merged.gauges["q"] == [(1, 1.0), (2, 2.0)]
    assert merged.gauges["r"] == [(2, 9.0)]


@pytest.fixture(scope="module")
def gauged_result():
    spec = pipeline_spec(0.3, seed=3, protocol="raft", depth=4,
                         offered_load=400.0).with_(obs=True)
    return run_experiment(spec)


def test_standard_gauges_present(gauged_result):
    gauges = gauged_result.obs.metrics.gauges
    names = set(gauges)
    assert "session_in_flight" in names
    assert "session_submit_queue" in names
    assert any(n.startswith("cpu_backlog_us.") for n in names)
    assert any(n.startswith("nic_backlog_us.") for n in names)
    assert any(n.startswith("commit_lag.") for n in names)
    assert any(n.startswith("lock_table.") for n in names)
    assert all(samples for samples in gauges.values())


def test_standard_gauges_saw_the_load(gauged_result):
    """At a real offered load the session window is occupied and the
    leader's commit frontier leads the followers at least once."""
    gauges = gauged_result.obs.metrics.gauges
    assert max(v for _, v in gauges["session_in_flight"]) > 0
    lag_series = [s for n, s in gauges.items() if n.startswith("commit_lag.")]
    assert any(v > 0 for series in lag_series for _, v in series)
