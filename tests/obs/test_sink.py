"""JSONL telemetry export: dump, reload, and the Observability facade."""

import json

from repro.bench.experiments import pipeline_spec
from repro.bench.harness import run_experiment
from repro.metrics.recorder import RequestRecord
from repro.obs import Span, dump_jsonl, load_jsonl
from repro.protocols.types import OpType


def test_round_trip(tmp_path):
    path = str(tmp_path / "telemetry.jsonl")
    record = RequestRecord(client="c", site="oregon", server="r_oregon",
                           op=OpType.GET, start=10, end=30, ok=True)
    span = Span(trace="c:0", events=[(10, "submit", "c"),
                                     (30, "complete", "c")])
    lines = dump_jsonl(
        path, meta={"figure": "test", "seed": 1},
        records=[record], spans=[span],
        gauges={"q": [(5, 1.0), (10, 2.0)]}, counters={"redirects": 3},
        profile=[{"kind": "handle:X", "count": 4, "wall_s": 0.1,
                  "share": 1.0}])
    rows = load_jsonl(path)
    assert lines == len(rows) == 6
    assert rows[0] == {"type": "meta", "figure": "test", "seed": 1}
    by_type = {row["type"]: row for row in rows}
    assert by_type["record"]["op"] == "get"
    assert by_type["record"]["start_us"] == 10
    assert by_type["span"]["trace"] == "c:0"
    assert by_type["span"]["latency_us"] == 20
    assert by_type["gauge"]["samples"] == [[5, 1.0], [10, 2.0]]
    assert by_type["counter"]["count"] == 3
    assert by_type["profile"]["kind"] == "handle:X"


def test_every_line_is_valid_json(tmp_path):
    path = str(tmp_path / "run.jsonl")
    spec = pipeline_spec(0.2, seed=2, protocol="raft", depth=4).with_(obs=True)
    result = run_experiment(spec)
    lines = result.obs.dump(path, meta={"figure": "smoke"})
    with open(path) as src:
        parsed = [json.loads(line) for line in src]
    assert len(parsed) == lines
    types = {row["type"] for row in parsed}
    assert {"meta", "record", "span", "gauge", "profile"} <= types
    # Incomplete spans are exported too (complete flag distinguishes).
    spans = [row for row in parsed if row["type"] == "span"]
    assert any(row["complete"] for row in spans)
