"""End-to-end span invariants over real runs.

The acceptance properties of the span collector: timestamps are monotonic,
per-phase durations sum to the end-to-end latency exactly (interval
attribution), a retried or redirected request folds into ONE span, and
spans survive a leader kill mid-request.
"""

import pytest

from repro.bench.experiments import pipeline_spec
from repro.bench.harness import Cluster, run_experiment
from repro.shard.cluster import ShardedCluster, ShardedSpec
from repro.shard.partition import Partitioner
from repro.shard.router import ShardRoutedClient, ShardRouter
from repro.sim.units import ms, sec
from repro.workload.session import RetryPolicy
from repro.workload.ycsb import WorkloadConfig


def _assert_well_formed(spans):
    assert spans, "no complete spans reconstructed"
    for span in spans:
        assert span.monotonic, span.trace
        assert span.events[0][1] == "submit" and span.events[-1][1] == "complete"
        assert sum(span.phase_durations().values()) == span.latency_us
        assert sum(span.budget().values()) == span.latency_us


@pytest.fixture(scope="module")
def raft_result():
    spec = pipeline_spec(0.3, seed=3, protocol="raft", depth=4).with_(obs=True)
    return run_experiment(spec)


def test_spans_monotonic_and_sums_exact(raft_result):
    _assert_well_formed(raft_result.obs.reconstruct().spans())


def test_every_completion_has_exactly_one_span(raft_result):
    """The span log and the metrics recorder agree request by request: one
    complete span per completed request, same submit/ack timestamps."""
    spans = raft_result.obs.reconstruct().spans()
    records = {(r.client, r.start, r.end)
               for r in raft_result.obs.metrics.records}
    assert len(spans) == len(records)
    for span in spans:
        client = span.trace.split(":")[0]
        assert (client, span.start, span.end) in records, span.trace


class _SwappedPartitioner(Partitioner):
    """A deliberately wrong ownership map: every first hop is redirected."""

    def __init__(self, inner: Partitioner) -> None:
        self.inner = inner
        self.num_shards = inner.num_shards

    def shard_of(self, key: str) -> int:
        return (self.inner.shard_of(key) + 1) % self.num_shards


def test_redirected_request_stays_one_span():
    workload = WorkloadConfig(read_fraction=0.5, conflict_rate=0.0,
                              records=1000)
    cluster = ShardedCluster(ShardedSpec(
        protocol="raft", num_shards=2, placement="spread",
        clients_per_region=0, workload=workload,
        duration_s=3.0, warmup_s=0.5, cooldown_s=0.5, seed=5, obs=True,
    ))
    stale = ShardRouter(_SwappedPartitioner(cluster.partitioner),
                        cluster.router.local_replica)
    client = ShardRoutedClient(
        "c_test", cluster.sim, cluster.network, "oregon", stale, workload,
        cluster.topology.sites, cluster.rng.stream("client:c_test"),
        cluster.metrics, stop_at=sec(2.5))
    cluster.obs.install([client])
    cluster.sim.run(until=sec(3.0))
    assert client.completed > 0
    assert client.redirects >= client.completed
    spans = cluster.obs.reconstruct().spans()
    _assert_well_formed(spans)
    assert len(spans) == client.completed  # one span per request, no dupes
    for span in spans:
        # The bounce is inside the span: reject + redirect + a second send
        # (the hop itself is instantaneous client-side — the cost lands in
        # the second `send` interval, the wire + queue to the right shard).
        assert "redirect" in span.phases, span.trace
        assert "reject" in span.phases, span.trace
        assert span.attempts >= 2


def test_spans_survive_leader_kill_mid_request():
    # A resend schedule fast enough that requests wiped with the old
    # leader's volatile log are retried inside the run (the default 5 s
    # base outlives a 6 s trial).
    retry = RetryPolicy(retry_timeout=ms(500), retry_cap=sec(2))
    spec = pipeline_spec(1.0, seed=7, protocol="raft", depth=4).with_(
        obs=True, check_history=False, full_check=False, retry=retry)
    cluster = Cluster(spec)
    crash_at, recover_at = sec(1.5), sec(3.0)
    leader = cluster.leader_replica
    cluster.sim.schedule(crash_at, leader.crash)
    cluster.sim.schedule(recover_at, leader.recover)
    result = cluster.run()
    recon = result.obs.reconstruct()
    spans = recon.spans()
    _assert_well_formed(spans)
    # Requests in flight at the kill fold into single well-formed spans:
    # the detour (resend, election wait) is INSIDE the span, not a dupe.
    straddling = [s for s in spans if s.start < crash_at < s.end]
    assert straddling, "no request was in flight across the leader kill"
    assert any(s.attempts >= 2 for s in straddling)
    # They waited out the election, so they dwarf the healthy-leader tail.
    before = [s.latency_us for s in spans if s.end <= crash_at]
    assert max(s.latency_us for s in straddling) > max(before)
    # The cluster kept serving: fresh requests complete after the crash.
    assert any(s.start > crash_at and s.is_complete for s in spans)
    # One span per completion, still (no duplicates across the election).
    records = {(r.client, r.start, r.end) for r in result.obs.metrics.records}
    assert len(spans) == len(records)
