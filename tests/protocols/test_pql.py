"""Raft*-PQL: local reads, write waits, the ported LeaderLearn."""

import pytest

from repro.protocols.pql import RaftStarPQLReplica
from repro.sim.units import ms


def build(cluster_factory, **kwargs):
    kwargs.setdefault("config_kwargs", {})
    kwargs["config_kwargs"].setdefault("lease_duration", ms(500))
    kwargs["config_kwargs"].setdefault("lease_renew_interval", ms(100))
    return cluster_factory(RaftStarPQLReplica, **kwargs)


def test_follower_serves_read_locally(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(100)
    cmd = cluster.client.put("s0", "k", "v")
    cluster.run_ms(100)
    before = cluster["s2"].local_reads_served
    read = cluster.client.get("s2", "k")
    cluster.run_ms(50)
    reply = cluster.client.reply_for(read)
    assert reply is not None and reply.ok
    assert reply.value == "v"
    assert reply.local_read
    assert cluster["s2"].local_reads_served == before + 1


def test_leader_serves_read_locally_too(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(100)
    read = cluster.client.get("s0", "nope")
    cluster.run_ms(50)
    assert cluster.client.reply_for(read).local_read


def test_local_read_fast_vs_log_read(cluster_factory):
    """The Figure 9a effect on a LAN: lease reads skip the round trip."""
    cluster = build(cluster_factory)
    cluster.run_ms(100)
    t0 = cluster.sim.now
    read = cluster.client.get("s1", "k")
    cluster.run_ms(100)
    reply_time = next(t for t, _, r in cluster.client.replies
                      if r.request_id == read.request_id)
    assert reply_time - t0 < ms(4)  # ~1 local RTT, no consensus round


def test_write_waits_for_all_lease_holders(cluster_factory):
    """Commit requires acks from every active holder (Figure 8 LeaderLearn):
    a crashed holder blocks writes until its leases expire."""
    cluster = build(cluster_factory)
    cluster.run_ms(100)
    cluster["s2"].crash()
    cmd = cluster.client.put("s0", "k", "v")
    cluster.run_ms(150)
    # s2 still holds an unexpired lease -> the write must NOT have committed
    # yet even though {s0, s1} is a majority.
    assert cluster.client.reply_for(cmd) is None
    # After the lease expires, the write commits with the plain majority.
    cluster.run_ms(800)
    assert cluster.client.reply_for(cmd) is not None


def test_read_waits_for_conflicting_write(cluster_factory):
    """LocalRead's second condition: all entries modifying the key must be
    at or below commitIndex (Figure 8 line 4)."""
    cluster = build(cluster_factory)
    cluster.run_ms(100)
    follower = cluster["s1"]
    # Inject a pending (uncommitted) write for the key into the follower's
    # tracking, as if an append had arrived ahead of the commit.
    follower._last_modified["hot"] = follower.commit_index + 100
    read = cluster.client.get("s1", "hot")
    cluster.run_ms(20)
    assert cluster.client.reply_for(read) is None
    assert len(follower._pending_reads) == 1
    # Once the commit index catches up, the read completes.
    follower._last_modified["hot"] = follower.commit_index
    cluster.run_ms(100)
    assert cluster.client.reply_for(read) is not None


def test_read_without_lease_goes_through_log(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(100)
    cluster.network.isolate("s2")
    cluster.run_ms(900)  # s2's lease lapses
    assert not cluster["s2"].leases.has_quorum_lease()
    cluster.network.heal()
    # heal restores connectivity; before re-granting completes the next read
    # falls back to the log path
    read = cluster.client.get("s2", "k")
    cluster.run_ms(5)
    assert cluster["s2"].forwarded_reads >= 1 or cluster["s2"].local_reads_served == 0


def test_writes_replicate_everywhere(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(100)
    for i in range(5):
        cluster.client.put("s0", f"k{i}", f"v{i}")
    cluster.run_ms(300)
    for replica in cluster.values():
        for i in range(5):
            assert replica.store.read_local(f"k{i}") == f"v{i}"


def test_lease_read_freshness_history(cluster_factory):
    """End-to-end freshness: a read starting after a write completed sees it."""
    from repro.kvstore.checker import HistoryChecker, HistoryEvent
    from repro.protocols.types import OpType

    cluster = build(cluster_factory)
    checker = HistoryChecker()
    for replica in cluster.values():
        replica.on_apply_hooks.append(checker.record_apply)
    cluster.run_ms(100)

    write = cluster.client.put("s0", "x", "fresh")
    cluster.run_ms(200)
    write_end = next(t for t, _, r in cluster.client.replies
                     if r.request_id == write.request_id)
    read = cluster.client.get("s2", "x")
    cluster.run_ms(100)
    reply = cluster.client.reply_for(read)
    assert reply.value == "fresh"

    checker.record_event(HistoryEvent(
        client="client", seq=write.seq, op=OpType.PUT, key="x", value="fresh",
        start=0, end=write_end, server="s0"))
    checker.record_event(HistoryEvent(
        client="client", seq=read.seq, op=OpType.GET, key="x", value=reply.value,
        start=write_end + 1, end=cluster.sim.now, server="s2", local_read=True))
    assert checker.check_lease_read_freshness() == []


def test_paxos_pql_mirror(cluster_factory):
    """The optimization in its original home behaves the same way."""
    from repro.protocols.paxos_pql import PaxosPQLReplica

    cluster = cluster_factory(PaxosPQLReplica, config_kwargs={
        "lease_duration": ms(500), "lease_renew_interval": ms(100)})
    cluster.run_ms(100)
    cmd = cluster.client.put("s0", "k", "v")
    cluster.run_ms(150)
    assert cluster.client.reply_for(cmd).ok
    read = cluster.client.get("s1", "k")
    cluster.run_ms(50)
    reply = cluster.client.reply_for(read)
    assert reply.ok and reply.local_read and reply.value == "v"
