"""Wire messages: sizes and CPU unit weights."""

from repro.protocols.messages import (
    Accept,
    AppendEntries,
    ClientRequest,
    ForwardBatch,
    MenciusAppend,
    Promise,
    RequestVoteReply,
)
from repro.protocols.types import Ballot, Command, Entry, OpType


def _put(value_size=8):
    return Command(op=OpType.PUT, key="k", value="v", client_id="c", seq=1,
                   value_size=value_size)


def test_client_request_costs_three_units():
    assert ClientRequest(command=_put()).command_count() == 3.0


def test_forward_batch_unit_per_command():
    batch = ForwardBatch(origin="s1", commands=[_put(), _put(), _put()])
    assert batch.command_count() == 3


def test_append_entries_quarter_unit_per_entry():
    entries = [Entry(term=1, command=_put()) for _ in range(8)]
    msg = AppendEntries(term=1, leader="s0", prev_index=-1, prev_term=-1,
                        entries=entries, leader_commit=-1)
    assert msg.command_count() == 2.0


def test_append_entries_size_scales_with_payload():
    small = AppendEntries(term=1, leader="s0", prev_index=-1, prev_term=-1,
                          entries=[Entry(term=1, command=_put(8))], leader_commit=-1)
    large = AppendEntries(term=1, leader="s0", prev_index=-1, prev_term=-1,
                          entries=[Entry(term=1, command=_put(4096))], leader_commit=-1)
    assert large.size_bytes() - small.size_bytes() == 4096 - 8


def test_append_entries_last_index():
    msg = AppendEntries(term=1, leader="s0", prev_index=4, prev_term=1,
                        entries=[Entry(term=1, command=_put())] * 3, leader_commit=-1)
    assert msg.last_index == 7


def test_accept_units():
    msg = Accept(ballot=Ballot(1, "s0"), proposer="s0",
                 instances={0: _put(), 1: _put()}, commit_index=-1)
    assert msg.command_count() == 0.5


def test_mencius_append_units():
    msg = MenciusAppend(sender="s0", owner="s0", ballot=0,
                        items={0: Entry(term=0, command=_put())}, next_own=5)
    assert msg.command_count() == 0.25


def test_vote_reply_size_includes_extras():
    empty = RequestVoteReply(term=1, voter="s1", granted=True)
    loaded = RequestVoteReply(term=1, voter="s1", granted=True,
                              extra_entries={5: Entry(term=1, command=_put(4096))})
    assert loaded.size_bytes() > empty.size_bytes() + 4000


def test_promise_size_includes_instances():
    empty = Promise(ballot=Ballot(1, "s0"), acceptor="s1", instances={}, log_tail=-1)
    loaded = Promise(ballot=Ballot(1, "s0"), acceptor="s1",
                     instances={0: Entry(term=1, command=_put(1000))}, log_tail=0)
    assert loaded.size_bytes() > empty.size_bytes() + 900
