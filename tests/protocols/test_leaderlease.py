"""Leader Lease (LL) baseline."""

import pytest

from repro.protocols.leaderlease import LeaderLeaseReplica
from repro.sim.units import ms


def build(cluster_factory, **kwargs):
    kwargs.setdefault("config_kwargs", {})
    kwargs["config_kwargs"].setdefault("lease_duration", ms(500))
    return cluster_factory(LeaderLeaseReplica, **kwargs)


def test_leader_serves_reads_locally(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(200)  # heartbeat acks establish the lease
    assert cluster["s0"].has_leader_lease()
    read = cluster.client.get("s0", "k")
    cluster.run_ms(20)
    reply = cluster.client.reply_for(read)
    assert reply.ok and reply.local_read


def test_follower_reads_forwarded_not_local(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(200)
    cluster.client.put("s0", "k", "v")
    cluster.run_ms(100)
    read = cluster.client.get("s1", "k")
    cluster.run_ms(100)
    reply = cluster.client.reply_for(read)
    assert reply.ok and reply.value == "v"
    assert cluster["s1"].local_reads_served == 0


def test_followers_never_hold_the_lease(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(200)
    assert not cluster["s1"].has_leader_lease()
    assert not cluster["s2"].has_leader_lease()


def test_isolated_leader_loses_lease(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(200)
    cluster.network.isolate("s0")
    cluster.run_ms(900)
    assert not cluster["s0"].has_leader_lease()


def test_read_after_lease_loss_goes_through_log(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(200)
    cluster.network.isolate("s0")
    cluster.run_ms(900)
    before = cluster["s0"].local_reads_served
    cluster.client.get("s0", "k")
    cluster.run_ms(50)
    assert cluster["s0"].local_reads_served == before


def test_writes_behave_like_raftstar(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(200)
    cmd = cluster.client.put("s1", "k", "v")
    cluster.run_ms(150)
    assert cluster.client.reply_for(cmd).ok
    assert cluster["s0"].store.read_local("k") == "v"
