"""Raft*: the two differences from Raft (§3) at the implementation level."""

import pytest

from repro.protocols.messages import AppendEntries
from repro.protocols.raft import RaftReplica, Role
from repro.protocols.raftstar import RaftStarReplica
from repro.protocols.types import Command, Entry, OpType


def _entry(term, key="k", value="v"):
    return Entry(term=term, command=Command(op=OpType.PUT, key=key, value=value,
                                            client_id="t", seq=1), ballot=term)


def test_basic_replication_works(cluster_factory):
    cluster = cluster_factory(RaftStarReplica)
    cluster.run_ms(5)
    cmd = cluster.client.put("s0", "k", "v")
    cluster.run_ms(100)
    assert cluster.client.reply_for(cmd).ok


def test_ballots_rewritten_on_append(cluster_factory):
    """Difference 2: every append stamps all entries' ballots with the
    current term (MultiPaxos overwrite semantics)."""
    cluster = cluster_factory(RaftStarReplica)
    cluster.run_ms(5)
    for i in range(3):
        cluster.client.put("s0", f"k{i}", "v")
    cluster.run_ms(200)
    for replica in cluster.values():
        assert all(entry.ballot == replica.current_term for entry in replica.log)


def test_follower_rejects_shorter_append(cluster_factory):
    """Difference 1 (follower side): a longer log rejects instead of erasing."""
    cluster = cluster_factory(RaftStarReplica)
    cluster.run_ms(5)
    follower = cluster["s1"]
    follower.log = [_entry(1), _entry(1), _entry(1)]
    msg = AppendEntries(term=1, leader="s0", prev_index=-1, prev_term=-1,
                        entries=[_entry(1)], leader_commit=-1)
    success, match = follower._try_append(msg)
    assert not success
    assert match == 2  # reports its longer length
    assert len(follower.log) == 3  # nothing erased


def test_raft_erases_where_raftstar_rejects(cluster_factory):
    """Contrast with plain Raft, which erases the conflicting suffix."""
    cluster = cluster_factory(RaftReplica)
    cluster.run_ms(5)
    follower = cluster["s1"]
    follower.log = [_entry(1), _entry(2), _entry(2)]
    msg = AppendEntries(term=3, leader="s0", prev_index=0, prev_term=1,
                        entries=[_entry(3)], leader_commit=-1)
    success, match = follower._try_append(msg)
    assert success
    assert [e.term for e in follower.log] == [1, 3]  # suffix erased


def test_empty_heartbeat_not_rejected_by_longer_log(cluster_factory):
    cluster = cluster_factory(RaftStarReplica)
    cluster.run_ms(5)
    follower = cluster["s1"]
    follower.log = [_entry(1), _entry(1)]
    msg = AppendEntries(term=1, leader="s0", prev_index=0, prev_term=1,
                        entries=[], leader_commit=-1)
    success, match = follower._try_append(msg)
    assert success and match == 0


def test_vote_reply_carries_extra_entries(cluster_factory):
    """Difference 1 (voter side): extras beyond the candidate's log ride on
    the vote reply (Figure 2a lines 14-16)."""
    cluster = cluster_factory(RaftStarReplica)
    cluster.run_ms(5)
    voter = cluster["s1"]
    voter.log = [_entry(1, key="a"), _entry(1, key="b")]
    extras = voter._vote_extras(candidate_last_index=0)
    assert set(extras) == {1}
    assert extras[1].command.key == "b"


def test_new_leader_merges_safe_entries(cluster_factory):
    """A candidate with a shorter log adopts the voters' extra entries —
    the Paxos Phase1Succeed behaviour Raft lacks."""
    cluster = cluster_factory(RaftStarReplica)
    cluster.run_ms(5)
    cluster.client.put("s0", "k1", "v1")
    cluster.client.put("s0", "k2", "v2")
    cluster.run_ms(100)
    baseline = len(cluster["s1"].log)
    assert baseline >= 2
    cluster["s0"].crash()
    cluster.run_ms(900)
    new_leader = next(r for r in cluster.values() if r.alive and r.role is Role.LEADER)
    assert len(new_leader.log) >= baseline
    keys = {e.command.key for e in new_leader.log}
    assert {"k1", "k2"} <= keys


def test_merged_entries_stamped_with_new_term(cluster_factory):
    cluster = cluster_factory(RaftStarReplica)
    cluster.run_ms(5)
    cluster.client.put("s0", "k", "v")
    cluster.run_ms(100)
    cluster["s0"].crash()
    cluster.run_ms(900)
    new_leader = next(r for r in cluster.values() if r.alive and r.role is Role.LEADER)
    cluster.run_ms(200)
    assert all(entry.ballot == new_leader.current_term for entry in new_leader.log)


def test_commit_without_current_term_restriction(cluster_factory):
    """Raft* commits any majority-replicated index — no §5.4.2 rule."""
    cluster = cluster_factory(RaftStarReplica)
    assert cluster["s0"]._can_commit_at(0) is True


def test_raft_has_current_term_restriction(cluster_factory):
    cluster = cluster_factory(RaftReplica)
    cluster.run_ms(5)
    leader = cluster["s0"]
    leader.log.append(_entry(0))  # old-term entry
    assert leader._can_commit_at(leader.last_index) is False


def test_committed_survive_failover_raftstar(cluster_factory):
    cluster = cluster_factory(RaftStarReplica)
    cluster.run_ms(5)
    cmd = cluster.client.put("s0", "key", "must-survive")
    cluster.run_ms(150)
    assert cluster.client.reply_for(cmd).ok
    cluster["s0"].crash()
    cluster.run_ms(900)
    for replica in cluster.values():
        if replica.alive and replica.role is Role.LEADER:
            assert replica.store.read_local("key") == "must-survive"
            break
    else:
        pytest.fail("no leader elected")
