"""Value types."""

from repro.protocols.types import NOP, Ballot, Command, Entry, OpType


def test_command_request_id():
    c = Command(op=OpType.PUT, key="k", value="v", client_id="c1", seq=7)
    assert c.request_id == ("c1", 7)


def test_command_kind_predicates():
    assert Command(op=OpType.GET, key="k").is_read
    assert Command(op=OpType.PUT, key="k", value="v").is_write
    assert NOP.is_nop and not NOP.is_read and not NOP.is_write


def test_put_wire_size_includes_value():
    small = Command(op=OpType.PUT, key="k", value="v", value_size=8)
    big = Command(op=OpType.PUT, key="k", value="v", value_size=4096)
    assert big.wire_size() - small.wire_size() == 4096 - 8


def test_get_wire_size_ignores_value_size():
    get = Command(op=OpType.GET, key="k", value_size=4096)
    assert get.wire_size() < 100


def test_ballot_ordering():
    assert Ballot(1, "a") < Ballot(2, "a")
    assert Ballot(1, "a") < Ballot(1, "b")
    assert Ballot(2, "a") > Ballot(1, "z")
    assert Ballot(1, "a") <= Ballot(1, "a")
    assert Ballot(1, "a") >= Ballot(1, "a")


def test_ballot_next_for():
    b = Ballot(3, "x").next_for("y")
    assert b.round == 4 and b.proposer == "y"


def test_ballot_hashable_equality():
    assert Ballot(1, "a") == Ballot(1, "a")
    assert len({Ballot(1, "a"), Ballot(1, "a"), Ballot(2, "a")}) == 2


def test_entry_copy_is_independent():
    entry = Entry(term=1, command=NOP, ballot=1)
    clone = entry.copy()
    clone.ballot = 9
    assert entry.ballot == 1


def test_entry_wire_size():
    entry = Entry(term=1, command=Command(op=OpType.PUT, key="k", value="v",
                                          value_size=100))
    assert entry.wire_size() > 100
