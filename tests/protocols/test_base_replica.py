"""ReplicaBase: sessions, forwarding, reply relays."""

import pytest

from repro.protocols.base import ReplicaBase
from repro.protocols.messages import ClientReply, ForwardBatch, ReplyRelay
from repro.protocols.types import Command, Entry, OpType
from repro.sim.units import ms


class EchoReplica(ReplicaBase):
    """Minimal protocol: the designated leader applies immediately; others
    forward."""

    LEADER = "s0"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._next_index = 0

    def leader_hint(self):
        return self.LEADER

    def submit_command(self, command):
        if self.name != self.LEADER:
            self.forward_to_leader(command)
            return
        self.apply_entry(self._next_index, Entry(term=1, command=command))
        self._next_index += 1


def test_direct_client_gets_reply(cluster_factory):
    cluster = cluster_factory(EchoReplica, leader=None)
    cmd = cluster.client.put("s0", "k", "v")
    cluster.run_ms(20)
    reply = cluster.client.reply_for(cmd)
    assert reply.ok and reply.server == "s0"


def test_forwarded_client_reply_routed_back(cluster_factory):
    cluster = cluster_factory(EchoReplica, leader=None)
    cmd = cluster.client.put("s1", "k", "v")
    cluster.run_ms(50)
    reply = cluster.client.reply_for(cmd)
    assert reply is not None and reply.ok
    # the reply came back through the follower the client contacted
    assert any(src == "s1" for _, src, r in cluster.client.replies
               if r.request_id == cmd.request_id)


def test_forward_batching_flushes_on_size(cluster_factory):
    cluster = cluster_factory(EchoReplica, leader=None,
                              config_kwargs={"forward_batch_max": 2,
                                             "forward_flush_interval": ms(100)})
    follower = cluster["s1"]
    sent = []
    original_send = follower.send

    def spy(dst, message):
        if isinstance(message, ForwardBatch):
            sent.append(len(message.commands))
        original_send(dst, message)

    follower.send = spy
    c1 = cluster.client.put("s1", "a", "1")
    c2 = cluster.client.put("s1", "b", "2")
    cluster.run_ms(10)  # well under the 100ms flush interval
    assert sent == [2]  # flushed by reaching forward_batch_max


def test_forward_flush_timer(cluster_factory):
    cluster = cluster_factory(EchoReplica, leader=None,
                              config_kwargs={"forward_batch_max": 100,
                                             "forward_flush_interval": ms(5)})
    cmd = cluster.client.put("s2", "k", "v")
    cluster.run_ms(50)
    assert cluster.client.reply_for(cmd) is not None


def test_unhandled_message_traced_not_fatal(cluster_factory):
    cluster = cluster_factory(EchoReplica, leader=None)
    replica = cluster["s0"]
    replica.trace.enabled = True
    replica.on_message("client", object())
    assert replica.trace.count(kind="unhandled") == 1


def test_apply_hooks_called(cluster_factory):
    cluster = cluster_factory(EchoReplica, leader=None)
    seen = []
    cluster["s0"].on_apply_hooks.append(lambda n, i, c: seen.append((n, i)))
    cluster.client.put("s0", "k", "v")
    cluster.run_ms(20)
    assert seen == [("s0", 0)]


def test_local_read_rechecks_ownership_before_serving(cluster_factory):
    """A lease/local read pending across a MIGRATE_OUT must not be served
    from the exported (now empty) slot: serve_local_read re-checks the
    ownership guard and answers with a redirect instead of a ghost None."""
    cluster = cluster_factory(EchoReplica, leader=None)
    replica = cluster["s0"]
    replica.ownership_guard = lambda command: 1  # the key migrated to g1
    cmd = Command(op=OpType.GET, key="k", client_id="client", seq=1)
    replica._clients[cmd.request_id] = "client"
    replica.serve_local_read(cmd)
    cluster.run_ms(10)
    reply = cluster.client.reply_for(cmd)
    assert reply is not None and not reply.ok
    assert reply.shard_hint == 1
    assert not reply.local_read


def test_apply_time_wrong_shard_answered_with_redirect(cluster_factory):
    """A command that slipped into the log just before its key's range was
    exported is bounced with a redirect hint at apply time, not silently
    failed."""
    cluster = cluster_factory(EchoReplica, leader=None)
    replica = cluster["s0"]
    # Ownership flipped after the command entered the log: the guard and
    # filter both already reject the key when the entry applies.
    replica.store.set_key_filter(lambda key: False)
    replica.ownership_guard = lambda command: 2
    cmd = Command(op=OpType.PUT, key="k", value="v", client_id="client", seq=1)
    replica._clients[cmd.request_id] = "client"
    replica.apply_entry(0, Entry(term=1, command=cmd))
    cluster.run_ms(10)
    reply = cluster.client.reply_for(cmd)
    assert reply is not None and not reply.ok
    assert reply.shard_hint == 2
    assert replica.store.read_local("k") is None


def test_nop_entries_do_not_reply(cluster_factory):
    cluster = cluster_factory(EchoReplica, leader=None)
    replica = cluster["s0"]
    replica.apply_entry(0, Entry(term=1, command=Command(
        op=OpType.NOP, client_id="x", seq=1)))
    cluster.run_ms(10)
    assert cluster.client.replies == []
