"""Raft*-Mencius / Coordinated Paxos."""

import pytest

from repro.protocols.mencius import (
    CoordinatedPaxosReplica,
    MenciusReplica,
    RaftStarMenciusReplica,
    STATUS_COMMITTED,
    STATUS_SKIPPED,
)
from repro.sim.units import ms, sec


def build(cluster_factory, mode="ordered", **kwargs):
    kwargs.setdefault("leader", None)
    kwargs.setdefault("replica_kwargs", {"execution_mode": mode})
    kwargs.setdefault("config_kwargs", {})
    kwargs["config_kwargs"].setdefault("skip_interval", ms(10))
    kwargs["config_kwargs"].setdefault("revoke_timeout", ms(400))
    return cluster_factory(RaftStarMenciusReplica, **kwargs)


def test_every_replica_serves_its_own_clients(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(5)
    cmds = [cluster.client.put(f"s{i}", f"k{i}", f"v{i}") for i in range(3)]
    cluster.run_ms(300)
    for cmd in cmds:
        assert cluster.client.reply_for(cmd).ok


def test_owned_indexes_round_robin(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(5)
    cluster.client.put("s1", "k", "v")
    cluster.run_ms(200)
    replica = cluster["s1"]
    owned = [i for i, e in replica.entries.items()
             if e.command.key == "k"]
    assert owned and all(i % 3 == 1 for i in owned)


def test_states_converge_across_replicas(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(5)
    for i in range(6):
        cluster.client.put(f"s{i % 3}", f"k{i}", f"v{i}")
    cluster.run_ms(500)
    snapshots = [replica.store.snapshot() for replica in cluster.values()]
    assert snapshots[0] == snapshots[1] == snapshots[2]
    assert len(snapshots[0]) == 6


def test_skips_fill_idle_owners(cluster_factory):
    """Only s0 proposes; s1/s2's indexes must be skipped so s0's entries
    execute."""
    cluster = build(cluster_factory)
    cluster.run_ms(5)
    cmd = cluster.client.put("s0", "k", "v")
    cluster.run_ms(300)
    assert cluster.client.reply_for(cmd).ok
    replica = cluster["s0"]
    skipped = [i for i, s in replica.status.items() if s == STATUS_SKIPPED]
    assert skipped, "idle owners' indexes must be skipped"


def test_frontier_advertised_and_learned(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(5)
    cluster.client.put("s0", "k", "v")
    cluster.run_ms(300)
    # everyone learned s0's frontier advance
    for name in ("s1", "s2"):
        assert cluster[name].frontier["s0"] >= 3


def test_commutative_mode_lower_latency_than_ordered(cluster_factory):
    def one_run(mode):
        cluster = build(cluster_factory, mode=mode, rtt_ms=40.0)
        cluster.run_ms(5)
        cmd = cluster.client.put("s0", "k", "v")
        cluster.run_ms(1000)
        reply_time = next(t for t, _, r in cluster.client.replies
                          if r.request_id == cmd.request_id)
        return reply_time

    assert one_run("commutative") <= one_run("ordered")


def test_execution_order_identical_everywhere(cluster_factory):
    applied = {}
    cluster = build(cluster_factory)
    for name, replica in cluster.replicas.items():
        applied[name] = []
        replica.on_apply_hooks.append(
            lambda n, i, c: applied[n].append((i, c.client_id, c.seq)))
    cluster.run_ms(5)
    for i in range(9):
        cluster.client.put(f"s{i % 3}", f"k{i}", f"v{i}")
    cluster.run_ms(600)
    non_nop = {
        name: [x for x in seq]
        for name, seq in applied.items()
    }
    assert non_nop["s0"] == non_nop["s1"] == non_nop["s2"]


def test_crashed_owner_revoked_and_log_moves_on(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(5)
    cluster["s2"].crash()
    cmd = cluster.client.put("s0", "k", "after-crash")
    cluster.run_ms(2500)  # revoke timeout + recovery round
    reply = cluster.client.reply_for(cmd)
    assert reply is not None and reply.ok
    assert cluster["s1"].store.read_local("k") == "after-crash"


def test_client_command_survives_revocation(cluster_factory):
    """If a recovery no-ops an owner's pending index, the owner re-proposes
    the ousted command at a fresh index."""
    cluster = build(cluster_factory)
    cluster.run_ms(5)
    # partition s2 away from the other replicas (client connectivity stays)
    cluster.network.block("s2", "s0")
    cluster.network.block("s2", "s1")
    cmd = cluster.client.put("s2", "k", "survive")
    cluster.run_ms(1500)  # others revoke s2's stalled range
    cluster.network.heal()
    cluster.run_ms(2500)
    reply = cluster.client.reply_for(cmd)
    assert reply is not None and reply.ok
    assert cluster["s0"].store.read_local("k") == "survive"


def test_coordinated_paxos_variant_works(cluster_factory):
    cluster = cluster_factory(CoordinatedPaxosReplica, leader=None,
                              replica_kwargs={"execution_mode": "ordered"},
                              config_kwargs={"skip_interval": ms(10)})
    cluster.run_ms(5)
    cmd = cluster.client.put("s1", "k", "v")
    cluster.run_ms(300)
    assert cluster.client.reply_for(cmd).ok


def test_skip_tags_recorded(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(5)
    cluster.client.put("s0", "k", "v")
    cluster.run_ms(300)
    replica = cluster["s1"]
    assert any(replica.skip_tags.values())
