"""Fault injection: message loss, partitions, crash-recover cycles."""

import pytest

from repro.kvstore.checker import HistoryChecker
from repro.protocols.raft import RaftReplica, Role
from repro.protocols.raftstar import RaftStarReplica
from repro.sim.network import NetworkConfig
from repro.sim.units import ms


def attach_checker(cluster):
    checker = HistoryChecker()
    for replica in cluster.values():
        replica.on_apply_hooks.append(checker.record_apply)
    return checker


@pytest.mark.parametrize("replica_cls", [RaftReplica, RaftStarReplica])
def test_progress_under_message_loss(cluster_factory, replica_cls):
    cluster = cluster_factory(replica_cls)
    cluster.network.config.loss_rate = 0.05
    checker = attach_checker(cluster)
    cluster.run_ms(5)
    cmds = []
    for i in range(10):
        cmds.append(cluster.client.put("s0", f"k{i}", f"v{i}"))
        cluster.run_ms(120)
    cluster.network.config.loss_rate = 0.0
    cluster.run_ms(2000)
    replied = sum(1 for c in cmds if cluster.client.reply_for(c))
    assert replied >= 8  # loss slows things down but does not wedge them
    assert checker.check_prefix_agreement() == []


@pytest.mark.parametrize("replica_cls", [RaftReplica, RaftStarReplica])
def test_repeated_leader_crashes_never_lose_commits(cluster_factory, replica_cls):
    cluster = cluster_factory(replica_cls, n=5)
    checker = attach_checker(cluster)
    cluster.run_ms(5)
    committed = {}
    crashed = []
    for round_no in range(3):
        cmd = cluster.client.put("s0" if round_no == 0 else leader_name(cluster),
                                 f"k{round_no}", f"v{round_no}")
        cluster.run_ms(400)
        if cluster.client.reply_for(cmd):
            committed[f"k{round_no}"] = f"v{round_no}"
        victim = leader_name(cluster)
        if victim:
            cluster[victim].crash()
            crashed.append(victim)
        cluster.run_ms(1200)
        if len(crashed) == 2:
            break
    final_leader = leader_name(cluster)
    assert final_leader is not None
    for key, value in committed.items():
        assert cluster[final_leader].store.read_local(key) == value
    assert checker.check_prefix_agreement() == []


def leader_name(cluster):
    for name, replica in cluster.replicas.items():
        if replica.alive and replica.role is Role.LEADER:
            return name
    return None


def test_crashed_follower_recovers_and_catches_up(cluster_factory):
    cluster = cluster_factory(RaftReplica)
    cluster.run_ms(5)
    cluster["s2"].crash()
    for i in range(5):
        cluster.client.put("s0", f"k{i}", f"v{i}")
    cluster.run_ms(300)
    cluster["s2"].recover()
    cluster.run_ms(1000)
    for i in range(5):
        assert cluster["s2"].store.read_local(f"k{i}") == f"v{i}"


def test_minority_partition_cannot_commit(cluster_factory):
    cluster = cluster_factory(RaftReplica, n=5)
    cluster.run_ms(5)
    cluster.network.partition(["s0", "s1"], ["s2", "s3", "s4"])
    cmd = cluster.client.put("s0", "k", "minority")
    cluster.run_ms(500)
    assert cluster.client.reply_for(cmd) is None


def test_majority_side_elects_and_serves(cluster_factory):
    cluster = cluster_factory(RaftReplica, n=5)
    cluster.run_ms(5)
    cluster.network.partition(["s0", "s1"], ["s2", "s3", "s4"])
    cluster.run_ms(1200)
    majority_leader = next(
        (n for n in ("s2", "s3", "s4")
         if cluster[n].role is Role.LEADER), None)
    assert majority_leader is not None
    cmd = cluster.client.put(majority_leader, "k", "majority")
    cluster.run_ms(400)
    assert cluster.client.reply_for(cmd).ok


def test_heal_reconciles_divergent_logs(cluster_factory):
    cluster = cluster_factory(RaftReplica, n=5)
    checker = attach_checker(cluster)
    cluster.run_ms(5)
    # old leader strands writes in the minority
    cluster.network.partition(["s0", "s1"], ["s2", "s3", "s4"])
    cluster.client.put("s0", "k", "stranded")
    cluster.run_ms(1200)
    majority_leader = next(n for n in ("s2", "s3", "s4")
                           if cluster[n].role is Role.LEADER)
    done = cluster.client.put(majority_leader, "k", "winner")
    cluster.run_ms(400)
    assert cluster.client.reply_for(done).ok
    cluster.network.heal()
    cluster.run_ms(1500)
    # every replica converges on the committed value
    for replica in cluster.values():
        assert replica.store.read_local("k") == "winner"
    assert checker.check_prefix_agreement() == []
