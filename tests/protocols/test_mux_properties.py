"""Property-based tests for the host-mux envelope layer.

The coalescing transport sits under EVERY protocol message of a
multiplexed deployment, so its invariants carry all of them:

* pack/unpack round-trip identity — an envelope delivers exactly the
  (src, dst, group, payload) tuples it was built from, in order, and its
  cost fields are the sums of its parts plus one header;
* per-(src, dst, group) FIFO — whatever interleaving of arrivals and
  flush ticks occurs, each ordered pair of replicas observes its messages
  in send order (the property Mencius' skip inference and Raft's
  pipelined appends rely on);
* no loss, no duplication — random arrival times and randomly injected
  extra flushes never drop a buffered message or deliver one twice.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.metrics.recorder import MetricsRecorder  # noqa: E402
from repro.protocols.messages import (  # noqa: E402
    HEADER_BYTES,
    HostEnvelope,
    MuxedMessage,
    payload_command_count,
    payload_size_bytes,
)
from repro.protocols.mux import GroupMux, MuxDirectory  # noqa: E402
from repro.sim.events import Simulator  # noqa: E402
from repro.sim.network import Network  # noqa: E402
from repro.sim.node import Host, Node  # noqa: E402
from repro.sim.topology import symmetric_lan  # noqa: E402

SITES = ("s0", "s1")
GROUPS = (0, 1, 2)


class Payload:
    """An inner message with explicit identity and optional cost hooks."""

    def __init__(self, ident, size=None, count=None):
        self.ident = ident
        self._size = size
        self._count = count
        if size is not None:
            self.size_bytes = lambda: size
        if count is not None:
            self.command_count = lambda: count

    def __repr__(self):  # pragma: no cover - hypothesis reporting aid
        return f"Payload({self.ident})"


payload_specs = st.tuples(
    st.one_of(st.none(), st.integers(min_value=0, max_value=8192)),
    st.one_of(st.none(), st.floats(min_value=0.0, max_value=8.0,
                                   allow_nan=False)),
)


@given(st.lists(st.tuples(st.sampled_from(GROUPS), payload_specs),
                max_size=30))
@settings(max_examples=100, deadline=None)
def test_pack_unpack_roundtrip_identity(specs):
    items = [
        MuxedMessage(src=f"g{g}_r_s0", dst=f"g{g}_r_s1", group=g,
                     payload=Payload(i, size=size, count=count))
        for i, (g, (size, count)) in enumerate(specs)
    ]
    env = HostEnvelope(src_host="h0.s0", dst_host="h0.s1", items=list(items))
    # Identity: same tuples, same order, nothing invented or lost.
    assert [(m.src, m.dst, m.group, m.payload.ident) for m in env.items] \
        == [(m.src, m.dst, m.group, m.payload.ident) for m in items]
    # Cost fields are the exact sums of the parts plus ONE header.
    assert env.size_bytes() == HEADER_BYTES + sum(
        payload_size_bytes(m.payload) for m in items)
    assert env.command_count() == pytest.approx(sum(
        payload_command_count(m.payload) for m in items))
    assert env.message_count() == len(items)


class Member(Node):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = []

    def on_message(self, src, message):
        self.received.append((src, message.ident))


def build_mesh(flush_interval):
    sim = Simulator()
    network = Network(sim, symmetric_lan(2))
    directory = MuxDirectory()
    muxes, members = {}, {}
    for site in SITES:
        host = Host(f"h0.{site}", sim, site=site)
        mux = GroupMux(host, sim, network, directory,
                       flush_interval=flush_interval,
                       metrics=MetricsRecorder())
        muxes[site] = mux
        for group in GROUPS:
            member = Member(f"g{group}_r_{site}", sim, network, site=site,
                            host=host)
            mux.register(member, group)
            members[(group, site)] = member
    return sim, muxes, members


# One send: (group, src site index, microsecond delay before sending).
sends = st.lists(
    st.tuples(st.sampled_from(GROUPS), st.sampled_from((0, 1)),
              st.integers(min_value=0, max_value=4000)),
    max_size=40)
# Extra flush ticks injected at arbitrary times, racing the flush timer.
flushes = st.lists(
    st.tuples(st.sampled_from((0, 1)), st.integers(min_value=0, max_value=4000)),
    max_size=10)
intervals = st.integers(min_value=1, max_value=2000)


@given(sends=sends, extra_flushes=flushes, flush_interval=intervals)
@settings(max_examples=100, deadline=None)
def test_fifo_no_loss_no_dup_under_random_interleavings(
        sends, extra_flushes, flush_interval):
    sim, muxes, members = build_mesh(flush_interval)
    pending = {}  # (src, dst) -> [(delay, ident)]
    for ident, (group, src_site, delay) in enumerate(sends):
        src = members[(group, SITES[src_site])]
        dst_name = f"g{group}_r_{SITES[1 - src_site]}"
        pending.setdefault((src.name, dst_name), []).append((delay, ident))
        sim.schedule(delay, src.send, dst_name, Payload(ident))
    # Actual send order per pair: by time, ties broken by scheduling order
    # (= enumeration order, the simulator's determinism contract).
    sent = {pair: [ident for _, ident in sorted(entries)]
            for pair, entries in pending.items()}
    for site_index, delay in extra_flushes:
        sim.schedule(delay, muxes[SITES[site_index]].flush)
    sim.run()

    got = {}
    for (group, site), member in members.items():
        for src, ident in member.received:
            got.setdefault((src, member.name), []).append(ident)
    # No loss, no duplication: every (src, dst) stream arrived exactly
    # once...
    assert {pair: len(idents) for pair, idents in got.items()} \
        == {pair: len(idents) for pair, idents in sent.items()}
    # ...and in FIFO order per (src, dst, group) (each pair IS one group).
    assert got == sent
