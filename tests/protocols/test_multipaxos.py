"""MultiPaxos runnable implementation."""

import pytest

from repro.protocols.multipaxos import MultiPaxosReplica
from repro.protocols.types import Ballot


def test_seeded_leader_proposes_and_commits(cluster_factory):
    cluster = cluster_factory(MultiPaxosReplica)
    cluster.run_ms(5)
    cmd = cluster.client.put("s0", "k", "v")
    cluster.run_ms(100)
    assert cluster.client.reply_for(cmd).ok
    assert cluster["s0"].store.read_local("k") == "v"


def test_commit_frontier_propagates_to_acceptors(cluster_factory):
    cluster = cluster_factory(MultiPaxosReplica)
    cluster.run_ms(5)
    cluster.client.put("s0", "k", "v")
    cluster.run_ms(300)
    for replica in cluster.values():
        assert replica.commit_index >= 0
        assert replica.store.read_local("k") == "v"


def test_follower_forwards(cluster_factory):
    cluster = cluster_factory(MultiPaxosReplica)
    cluster.run_ms(5)
    cmd = cluster.client.put("s2", "k", "fwd")
    cluster.run_ms(200)
    assert cluster.client.reply_for(cmd).ok


def test_instances_dense_under_single_leader(cluster_factory):
    cluster = cluster_factory(MultiPaxosReplica)
    cluster.run_ms(5)
    for i in range(6):
        cluster.client.put("s0", f"k{i}", f"v{i}")
    cluster.run_ms(300)
    leader = cluster["s0"]
    assert leader.commit_index == leader.log_tail
    assert set(leader.instances) == set(range(leader.log_tail + 1))


def test_failover_preserves_committed_values(cluster_factory):
    cluster = cluster_factory(MultiPaxosReplica)
    cluster.run_ms(5)
    cmd = cluster.client.put("s0", "k", "keep-me")
    cluster.run_ms(150)
    assert cluster.client.reply_for(cmd).ok
    cluster["s0"].crash()
    cluster.run_ms(1500)
    survivors = [r for r in cluster.values() if r.alive and r.phase1_succeeded]
    assert len(survivors) == 1
    new_leader = survivors[0]
    cluster.run_ms(300)
    assert new_leader.store.read_local("k") == "keep-me"


def test_new_leader_ballot_exceeds_old(cluster_factory):
    cluster = cluster_factory(MultiPaxosReplica)
    cluster.run_ms(5)
    old_ballot = cluster["s0"].ballot
    cluster["s0"].crash()
    cluster.run_ms(1500)
    new_leader = next(r for r in cluster.values() if r.alive and r.phase1_succeeded)
    assert new_leader.ballot > old_ballot


def test_new_leader_fills_holes_with_nops(cluster_factory):
    cluster = cluster_factory(MultiPaxosReplica)
    cluster.run_ms(5)
    for i in range(4):
        cluster.client.put("s0", f"k{i}", f"v{i}")
    cluster.run_ms(150)
    cluster["s0"].crash()
    cluster.run_ms(1500)
    new_leader = next(r for r in cluster.values() if r.alive and r.phase1_succeeded)
    cluster.run_ms(500)
    # the new leader's frontier is contiguous: every instance up to its
    # tail is chosen (values or no-ops)
    assert new_leader.commit_index == new_leader.log_tail


def test_ballot_uniqueness_by_proposer():
    assert Ballot(2, "a") != Ballot(2, "b")
    assert (2, "a") < (2, "b")


def test_stale_leader_demoted_on_higher_ballot(cluster_factory):
    cluster = cluster_factory(MultiPaxosReplica)
    cluster.run_ms(5)
    cluster.network.isolate("s0")
    cluster.run_ms(1500)
    cluster.network.heal()
    cluster.run_ms(500)
    leaders = [r for r in cluster.values() if r.phase1_succeeded]
    assert len(leaders) == 1
