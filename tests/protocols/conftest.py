"""Builders for protocol tests: small LAN clusters with direct access to
replicas, plus a scripted client node."""

from typing import Dict, Optional, Type

import pytest

from repro.protocols.config import ClusterConfig
from repro.protocols.messages import ClientReply, ClientRequest
from repro.protocols.types import Command, OpType
from repro.sim.events import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Node, NodeCosts
from repro.sim.rng import SplitRng
from repro.sim.topology import symmetric_lan
from repro.sim.units import ms, sec


class ScriptClient(Node):
    """Sends commands on demand; records replies."""

    def __init__(self, name, sim, network, site=None):
        super().__init__(name, sim, network, site=site,
                         costs=NodeCosts(per_message=0, per_command=0, per_byte=0))
        self.replies = []
        self._seq = 0

    def put(self, server: str, key: str, value: str) -> Command:
        self._seq += 1
        command = Command(op=OpType.PUT, key=key, value=value,
                          client_id=self.name, seq=self._seq)
        self.send(server, ClientRequest(command=command))
        return command

    def get(self, server: str, key: str) -> Command:
        self._seq += 1
        command = Command(op=OpType.GET, key=key, client_id=self.name, seq=self._seq)
        self.send(server, ClientRequest(command=command))
        return command

    def on_message(self, src, message):
        if isinstance(message, ClientReply):
            self.replies.append((self.sim.now, src, message))

    def reply_for(self, command: Command) -> Optional[ClientReply]:
        for _, _, reply in self.replies:
            if reply.request_id == command.request_id:
                return reply
        return None


class MiniCluster:
    """n replicas of a given class on a LAN + one script client."""

    def __init__(self, replica_cls: Type, n: int = 3, seed: int = 1,
                 leader: Optional[str] = "s0", rtt_ms: float = 2.0,
                 config_kwargs: Optional[dict] = None,
                 replica_kwargs: Optional[dict] = None,
                 fifo: bool = True):
        self.sim = Simulator()
        topo = symmetric_lan(n, rtt_ms_value=rtt_ms)
        self.network = Network(self.sim, topo, rng=SplitRng(seed),
                               config=NetworkConfig(fifo=fifo))
        kwargs = dict(
            replicas={f"s{i}": f"s{i}" for i in range(n)},
            initial_leader=leader,
            election_timeout_min=ms(150),
            election_timeout_max=ms(300),
            heartbeat_interval=ms(30),
        )
        kwargs.update(config_kwargs or {})
        self.config = ClusterConfig(**kwargs)
        self.replicas: Dict[str, object] = {
            name: replica_cls(name, self.sim, self.network, self.config,
                              **(replica_kwargs or {}))
            for name in self.config.names
        }
        self.client = ScriptClient("client", self.sim, self.network, site="s0")

    def __getitem__(self, name):
        return self.replicas[name]

    def run_ms(self, milliseconds: float):
        self.sim.run(until=self.sim.now + ms(milliseconds))

    def values(self):
        return list(self.replicas.values())


@pytest.fixture
def cluster_factory():
    return MiniCluster
