"""Per-message size memoization and envelope payload dedup.

Every hot-path message memoizes its wire size per instance, so the three
charging sites — the CPU cost model (`NodeCosts.cost`), the network's
serialization estimate (`payload_size_bytes`), and the mux envelope sum —
all read ONE cached number instead of re-walking the entry batch.

A `HostEnvelope` additionally dedups entries shared across its items
(same Command object at the same term/ballot): later occurrences cost a
back-reference, and the saving is surfaced as `payload_dedup_bytes()`
(accumulated by the mux into `coalesce_payload_dedup_bytes`)."""

from repro.protocols.messages import (
    DEDUP_REF_BYTES,
    HEADER_BYTES,
    AppendEntries,
    HostEnvelope,
    MuxedMessage,
)
from repro.protocols.types import Command, Entry, OpType
from repro.sim.node import NodeCosts, payload_size_bytes


def _entry(key: str, seq: int = 0, command: Command = None) -> Entry:
    if command is None:
        command = Command(op=OpType.PUT, key=key, value="v",
                          client_id="c", seq=seq)
    return Entry(term=1, command=command, ballot=1)


def _append(entries) -> AppendEntries:
    return AppendEntries(term=1, leader="r_a", prev_index=-1, prev_term=-1,
                         entries=tuple(entries), leader_commit=-1)


def test_size_computed_once_across_all_charging_sites(monkeypatch):
    calls = {"n": 0}
    real = Entry.wire_size

    def counting(self):
        calls["n"] += 1
        return real(self)

    monkeypatch.setattr(Entry, "wire_size", counting)
    message = _append([_entry("k1", 1), _entry("k2", 2), _entry("k3", 3)])

    cost = NodeCosts().cost(message)          # CPU charge
    size_net = payload_size_bytes(message)    # network serialization
    size_msg = message.size_bytes()           # direct / envelope sum

    assert cost > 0
    assert size_net == size_msg == HEADER_BYTES + 3 * real(_entry("k1"))
    # Three entries, each walked exactly once across all three sites.
    assert calls["n"] == 3


def test_memo_is_per_instance():
    small = _append([_entry("k")])
    big = _append([_entry("k%d" % i, i) for i in range(4)])
    assert small.size_bytes() < big.size_bytes()
    # Re-reads return the cached values unchanged.
    assert small.size_bytes() == small.size_bytes()
    assert big.size_bytes() == big.size_bytes()


def test_envelope_dedups_shared_entries_across_groups():
    shared = Command(op=OpType.PUT, key="migrate", value="blob",
                     client_id="coord", seq=9)
    entry_a = Entry(term=1, command=shared, ballot=1)
    entry_b = Entry(term=1, command=shared, ballot=1)
    msg_a = _append([entry_a])
    msg_b = _append([entry_b])
    envelope = HostEnvelope(
        src_host="h1", dst_host="h2",
        items=(MuxedMessage("g0_r_a", "g0_r_b", 0, msg_a),
               MuxedMessage("g1_r_a", "g1_r_b", 1, msg_b)))

    saved = envelope.payload_dedup_bytes()
    assert saved == entry_b.wire_size() - DEDUP_REF_BYTES
    assert saved > 0
    # The envelope's wire size charges the shared entry once plus the
    # back-reference, never twice.
    full = HEADER_BYTES + msg_a.size_bytes() + msg_b.size_bytes()
    assert envelope.size_bytes() == full - saved


def test_envelope_no_dedup_for_distinct_commands():
    # Equal *content* but distinct Command objects: identity-based dedup
    # must not fire (distinct client commands may legitimately collide in
    # content).
    msg_a = _append([_entry("same", 1)])
    msg_b = _append([_entry("same", 1)])
    envelope = HostEnvelope(
        src_host="h1", dst_host="h2",
        items=(MuxedMessage("g0_r_a", "g0_r_b", 0, msg_a),
               MuxedMessage("g1_r_a", "g1_r_b", 1, msg_b)))
    assert envelope.payload_dedup_bytes() == 0
    assert envelope.size_bytes() == (
        HEADER_BYTES + msg_a.size_bytes() + msg_b.size_bytes())


def test_envelope_no_dedup_across_different_ballots():
    # The same command re-proposed at a different ballot is a different
    # wire payload (Raft* restamps ballots): no dedup.
    shared = Command(op=OpType.PUT, key="k", value="v", client_id="c", seq=1)
    msg_a = _append([Entry(term=1, command=shared, ballot=1)])
    msg_b = _append([Entry(term=2, command=shared, ballot=2)])
    envelope = HostEnvelope(
        src_host="h1", dst_host="h2",
        items=(MuxedMessage("g0_r_a", "g0_r_b", 0, msg_a),
               MuxedMessage("g1_r_a", "g1_r_b", 1, msg_b)))
    assert envelope.payload_dedup_bytes() == 0
