"""Per-operation consistency levels against the lease-read protocols:
DEFAULT/LEASE_LOCAL ride the lease paths, LINEARIZABLE forces the log."""

import pytest

from repro.bench.harness import Cluster, ExperimentSpec
from repro.protocols.types import Consistency
from repro.sim.topology import uniform_topology
from repro.workload.ycsb import WorkloadConfig


def run(protocol, consistency, depth=2):
    spec = ExperimentSpec(
        protocol=protocol,
        leader_site="s0",
        topology=uniform_topology(["s0", "s1", "s2"], rtt_ms_value=10.0),
        clients_per_region=2,
        workload=WorkloadConfig(read_fraction=0.9, conflict_rate=0.0,
                                records=300),
        duration_s=3.0, warmup_s=0.8, cooldown_s=0.4,
        seed=2,
        check_history=True, full_check=True,
        pipeline_depth=depth,
        read_consistency=consistency,
    )
    return Cluster(spec).run()


@pytest.mark.parametrize("protocol", ["leaderlease", "raftstar-pql"])
def test_default_consistency_serves_lease_reads(protocol):
    result = run(protocol, Consistency.DEFAULT)
    assert result.local_read_fraction > 0.5
    assert not result.violations


@pytest.mark.parametrize("protocol", ["leaderlease", "raftstar-pql"])
def test_linearizable_forces_every_read_through_the_log(protocol):
    result = run(protocol, Consistency.LINEARIZABLE)
    assert result.local_read_fraction == 0.0
    assert not result.violations


def test_lease_local_on_pql_serves_from_leases_while_pipelined():
    result = run("raftstar-pql", Consistency.LEASE_LOCAL, depth=8)
    assert result.local_read_fraction > 0.5
    assert not result.violations


def test_lease_local_degrades_to_log_on_raft():
    result = run("raft", Consistency.LEASE_LOCAL)
    assert result.local_read_fraction == 0.0  # no lease machinery to ride
    assert not result.violations
