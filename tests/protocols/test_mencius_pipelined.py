"""Pipelined sessions over Mencius, both execution modes.

Mencius is leaderless — every replica owns a rotating share of the log —
so deep per-session windows exercise a different hot path than the
leader-based pipeline figure: concurrent in-flight commands fan out to
every owner at once, and the commutative execution mode re-orders
non-conflicting commands between skip announcements.  Both modes must
stay linearizable under depth-8 sessions, and the deeper window must
out-run the closed loop (in-flight requests, not client count, set
throughput — the same claim the pipeline figure makes for Raft)."""

import pytest

from repro.bench.experiments import pipeline_spec
from repro.bench.harness import run_experiment


@pytest.mark.parametrize("mode", ["ordered", "commutative"])
def test_depth8_beats_depth1_and_stays_linearizable(mode):
    throughput = {}
    for depth in (1, 8):
        spec = pipeline_spec(0.35, seed=3, protocol="mencius",
                             depth=depth).with_(execution_mode=mode)
        result = run_experiment(spec)
        assert result.violations == [], (
            f"mode={mode} depth={depth}: {result.violations[:3]}")
        assert result.completed > 0
        throughput[depth] = result.throughput_ops
    assert throughput[8] > throughput[1], (
        f"mode={mode}: depth-8 ({throughput[8]:.0f} ops/s) did not beat "
        f"depth-1 ({throughput[1]:.0f} ops/s)")
