"""Equivalence contracts for the hot-path fast constructors and the
specialized dispatch paths (the PR's "bit-identical behavior" obligation,
stated as properties):

* `Command.make` / `Entry.make` / `AppendEntries.make` /
  `AppendEntriesReply.make` / `HostEnvelope.make` produce objects
  field-for-field equal to dataclass construction — including `__eq__`,
  `hash` where defined, the lazy wire-size memo, and a FRESH (unshared)
  `skips` dict;
* the interned empty-heartbeat skeleton a Raft leader reuses across ticks
  equals what dataclass construction would have built for each tick;
* `ReplicaBase._handle` (the specialized one-frame dispatch) routes every
  registered message type to the same handler as the generic
  `Node._handle` -> `on_message` chain, with the same liveness and
  incarnation guards.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.protocols.base import ReplicaBase  # noqa: E402
from repro.protocols.messages import (  # noqa: E402
    AppendEntries,
    AppendEntriesReply,
    HostEnvelope,
    MuxedMessage,
)
from repro.protocols.raft import RaftReplica  # noqa: E402
from repro.protocols.types import (  # noqa: E402
    Command,
    Consistency,
    Entry,
    OpType,
)
from repro.sim.node import Node  # noqa: E402

keys = st.text(alphabet="abcdefgh", max_size=6)
commands = st.builds(
    Command,
    op=st.sampled_from(OpType),
    key=keys,
    value=st.one_of(st.none(), keys),
    client_id=keys,
    seq=st.integers(min_value=0, max_value=1 << 20),
    value_size=st.integers(min_value=0, max_value=4096),
    acked_low_water=st.integers(min_value=-1, max_value=1 << 20),
    consistency=st.sampled_from(Consistency),
    trace=st.one_of(st.none(), keys),
)
entries = st.builds(
    Entry,
    term=st.integers(min_value=0, max_value=100),
    command=commands,
    ballot=st.integers(min_value=-1, max_value=100),
)


@given(commands)
@settings(max_examples=200, deadline=None)
def test_command_make_equivalent(reference):
    made = Command.make(
        reference.op, key=reference.key, value=reference.value,
        client_id=reference.client_id, seq=reference.seq,
        value_size=reference.value_size,
        acked_low_water=reference.acked_low_water,
        consistency=reference.consistency, trace=reference.trace)
    assert made == reference
    assert hash(made) == hash(reference)
    assert made.wire_size() == reference.wire_size()
    assert made.request_id == reference.request_id
    assert made.trace_id == reference.trace_id
    assert made.is_data == reference.is_data
    assert made.shard_checked == reference.shard_checked


@given(entries)
@settings(max_examples=200, deadline=None)
def test_entry_make_equivalent(reference):
    made = Entry.make(reference.term, reference.command, reference.ballot)
    assert made == reference
    assert made.wire_size() == reference.wire_size()
    assert made.copy() == reference.copy()


@given(
    term=st.integers(min_value=0, max_value=100),
    prev_index=st.integers(min_value=-1, max_value=1000),
    prev_term=st.integers(min_value=-2, max_value=100),
    batch=st.lists(entries, max_size=4),
    leader_commit=st.integers(min_value=-1, max_value=1000),
    is_default=st.booleans(),
)
@settings(max_examples=100, deadline=None)
def test_append_entries_make_equivalent(term, prev_index, prev_term, batch,
                                        leader_commit, is_default):
    window = tuple(batch)
    reference = AppendEntries(
        term=term, leader="s0", prev_index=prev_index, prev_term=prev_term,
        entries=window, leader_commit=leader_commit, is_default=is_default)
    made = AppendEntries.make(
        term=term, leader="s0", prev_index=prev_index, prev_term=prev_term,
        entries=window, leader_commit=leader_commit, is_default=is_default)
    assert made == reference
    # The lazy memos start unset on both paths and agree once computed.
    assert made._size == reference._size == -1
    assert made._cpu is None and reference._cpu is None
    assert made.size_bytes() == reference.size_bytes()
    assert made.command_count() == reference.command_count()
    assert made.last_index == reference.last_index
    assert list(made.entry_batch()) == list(reference.entry_batch())
    # Fresh, unshared skips dict — matching field(default_factory=dict).
    assert made.skips == {}
    assert made.skips is not AppendEntries.make(
        term=term, leader="s0", prev_index=prev_index, prev_term=prev_term,
        entries=window, leader_commit=leader_commit).skips


@given(
    term=st.integers(min_value=0, max_value=100),
    success=st.booleans(),
    match_index=st.integers(min_value=-1, max_value=1000),
)
@settings(max_examples=100, deadline=None)
def test_append_reply_make_equivalent(term, success, match_index):
    reference = AppendEntriesReply(
        term=term, follower="s1", success=success, match_index=match_index)
    made = AppendEntriesReply.make(term, "s1", success, match_index)
    assert made == reference
    assert made.size_bytes() == reference.size_bytes()
    assert made.lease_holders == frozenset()
    assert made.skips == {} and made.skips is not reference.skips


@given(batch=st.lists(entries, min_size=0, max_size=5),
       term=st.integers(min_value=0, max_value=10))
@settings(max_examples=100, deadline=None)
def test_host_envelope_make_equivalent(batch, term):
    items = tuple(
        MuxedMessage(src="a0", dst="b0", group=i % 2,
                     payload=AppendEntries(
                         term=term, leader="a0", prev_index=-1, prev_term=-1,
                         entries=(entry,), leader_commit=-1))
        for i, entry in enumerate(batch))
    reference = HostEnvelope(src_host="ha", dst_host="hb", items=items)
    made = HostEnvelope.make("ha", "hb", items)
    assert made == reference
    assert made._size == reference._size == -1
    assert made._dedup == reference._dedup == -1
    assert made.size_bytes() == reference.size_bytes()
    assert made.payload_dedup_bytes() == reference.payload_dedup_bytes()
    assert made.command_count() == reference.command_count()
    assert made.message_count() == reference.message_count()


def test_interned_heartbeat_equals_fresh_construction(cluster_factory):
    """The leader's reused empty-append skeleton is indistinguishable from
    what per-tick dataclass construction would have built, and IS reused
    (same object) while (term, prev, commit) hold still."""
    cluster = cluster_factory(RaftReplica)
    cluster.run_ms(400)  # settle leadership, several idle heartbeat ticks
    leader = cluster["s0"]
    assert leader.role.name == "LEADER"
    peer = leader.peers[0]
    state = leader._peer_state[peer]
    interned = state.empty_append
    assert interned is not None
    fresh = AppendEntries(
        term=leader.current_term, leader=leader.name,
        prev_index=interned.prev_index,
        prev_term=leader.term_at(interned.prev_index),
        entries=(), leader_commit=interned.leader_commit)
    assert interned == fresh
    assert interned.size_bytes() == fresh.size_bytes()
    # Force another idle heartbeat: the same object is reused.
    leader._send_append(peer, heartbeat=True)
    assert leader._peer_state[peer].empty_append is interned


def test_specialized_dispatch_matches_register_handler(cluster_factory):
    """For EVERY registered message type, the specialized
    `ReplicaBase._handle` invokes exactly the handler `register_handler`
    recorded — same routing as the generic Node._handle -> on_message
    chain — and both honor the liveness/incarnation guards."""
    cluster = cluster_factory(RaftReplica)
    replica = cluster["s1"]
    calls = []
    for message_type, registered in sorted(
            replica._handlers.items(), key=lambda kv: kv[0].__name__):
        probe = object.__new__(message_type)  # identity-only probe payload
        seen = []
        replica._handlers[message_type] = (
            lambda src, msg, seen=seen: seen.append((src, msg)))
        try:
            replica._handle("peer", probe, replica.incarnation)
            Node._handle(replica, "peer", probe, replica.incarnation)
        finally:
            replica._handlers[message_type] = registered
        assert seen == [("peer", probe), ("peer", probe)], message_type
        calls.append(message_type)
    assert calls  # the table is not empty
    # Guards: a stale incarnation or a dead replica drops the message on
    # the specialized path exactly as on the generic one.
    probe_type = calls[0]
    probe = object.__new__(probe_type)
    seen = []
    registered = replica._handlers[probe_type]
    replica._handlers[probe_type] = lambda src, msg: seen.append(msg)
    try:
        replica._handle("peer", probe, replica.incarnation - 1)
        alive = replica.alive
        replica.alive = False
        replica._handle("peer", probe, replica.incarnation)
        replica.alive = alive
    finally:
        replica._handlers[probe_type] = registered
    assert seen == []


def test_replica_handle_is_specialized_override():
    """ReplicaBase declares its own `_handle` (the dispatch the node's
    pre-bound `_handle_cb` resolves to at construction)."""
    assert "_handle" in ReplicaBase.__dict__
    assert ReplicaBase._handle is not Node._handle
