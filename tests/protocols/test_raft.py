"""Raft: replication, commit rules, client paths, elections."""

import pytest

from repro.protocols.raft import RaftReplica, Role
from repro.protocols.types import OpType


def committed_everywhere(cluster, key, value, min_replicas=None):
    count = sum(
        1 for replica in cluster.values()
        if replica.store.read_local(key) == value
    )
    return count >= (min_replicas or len(cluster.values()))


def test_seeded_leader_is_leader(cluster_factory):
    cluster = cluster_factory(RaftReplica)
    cluster.run_ms(5)
    assert cluster["s0"].role is Role.LEADER
    assert all(cluster[n].leader_id == "s0" for n in ("s1", "s2"))


def test_write_commits_and_replies(cluster_factory):
    cluster = cluster_factory(RaftReplica)
    cluster.run_ms(5)
    cmd = cluster.client.put("s0", "k", "v1")
    cluster.run_ms(100)
    reply = cluster.client.reply_for(cmd)
    assert reply is not None and reply.ok


def test_write_applies_on_all_replicas(cluster_factory):
    cluster = cluster_factory(RaftReplica)
    cluster.run_ms(5)
    cluster.client.put("s0", "k", "v1")
    cluster.run_ms(200)
    assert committed_everywhere(cluster, "k", "v1")


def test_read_through_log_returns_latest(cluster_factory):
    cluster = cluster_factory(RaftReplica)
    cluster.run_ms(5)
    cluster.client.put("s0", "k", "v1")
    cluster.run_ms(100)
    cmd = cluster.client.get("s0", "k")
    cluster.run_ms(100)
    assert cluster.client.reply_for(cmd).value == "v1"


def test_follower_forwards_to_leader(cluster_factory):
    cluster = cluster_factory(RaftReplica)
    cluster.run_ms(5)
    cmd = cluster.client.put("s1", "k", "via-follower")
    cluster.run_ms(200)
    reply = cluster.client.reply_for(cmd)
    assert reply is not None and reply.ok
    assert cluster["s0"].store.read_local("k") == "via-follower"


def test_commit_index_advances_monotonically(cluster_factory):
    cluster = cluster_factory(RaftReplica)
    cluster.run_ms(5)
    seen = []
    for i in range(5):
        cluster.client.put("s0", f"k{i}", f"v{i}")
        cluster.run_ms(50)
        seen.append(cluster["s0"].commit_index)
    assert seen == sorted(seen)
    assert seen[-1] >= 4


def test_logs_converge(cluster_factory):
    cluster = cluster_factory(RaftReplica)
    cluster.run_ms(5)
    for i in range(10):
        cluster.client.put("s0", f"k{i}", f"v{i}")
    cluster.run_ms(300)
    logs = [
        [(e.term, e.command.client_id, e.command.seq) for e in r.log]
        for r in cluster.values()
    ]
    assert logs[0] == logs[1] == logs[2]


def test_election_after_leader_crash(cluster_factory):
    cluster = cluster_factory(RaftReplica)
    cluster.run_ms(5)
    cluster["s0"].crash()
    cluster.run_ms(800)
    leaders = [r for r in cluster.values() if r.alive and r.role is Role.LEADER]
    assert len(leaders) == 1
    assert leaders[0].current_term > 1


def test_no_progress_without_majority(cluster_factory):
    cluster = cluster_factory(RaftReplica)
    cluster.run_ms(5)
    cluster["s1"].crash()
    cluster["s2"].crash()
    cmd = cluster.client.put("s0", "k", "v")
    cluster.run_ms(300)
    assert cluster.client.reply_for(cmd) is None
    assert cluster["s0"].commit_index == -1


def test_progress_resumes_after_recovery(cluster_factory):
    cluster = cluster_factory(RaftReplica)
    cluster.run_ms(5)
    cluster["s1"].crash()
    cluster["s2"].crash()
    cluster.client.put("s0", "k", "v")
    cluster.run_ms(200)
    cluster["s1"].recover()
    cluster.run_ms(2000)
    # some leader exists and the write eventually commits
    alive_leaders = [r for r in cluster.values() if r.alive and r.role is Role.LEADER]
    assert len(alive_leaders) == 1
    assert alive_leaders[0].store.read_local("k") == "v"


def test_committed_data_survives_leader_change(cluster_factory):
    cluster = cluster_factory(RaftReplica)
    cluster.run_ms(5)
    cmd = cluster.client.put("s0", "k", "v-committed")
    cluster.run_ms(200)
    assert cluster.client.reply_for(cmd).ok
    cluster["s0"].crash()
    cluster.run_ms(800)
    new_leader = next(r for r in cluster.values() if r.alive and r.role is Role.LEADER)
    assert new_leader.store.read_local("k") == "v-committed"


def test_old_leader_steps_down_on_higher_term(cluster_factory):
    cluster = cluster_factory(RaftReplica)
    cluster.run_ms(5)
    old = cluster["s0"]
    cluster.network.isolate("s0")
    cluster.run_ms(800)  # others elect a new leader
    cluster.network.heal()
    cluster.run_ms(300)
    leaders = [r for r in cluster.values() if r.role is Role.LEADER]
    assert len(leaders) == 1
    assert old.current_term == leaders[0].current_term


def test_single_leader_per_term_across_runs(cluster_factory):
    """Election safety over several randomized seeds."""
    for seed in range(4):
        cluster = cluster_factory(RaftReplica, seed=seed, leader=None)
        leaders_by_term = {}
        for _ in range(20):
            cluster.run_ms(50)
            for replica in cluster.values():
                if replica.role is Role.LEADER:
                    term = replica.current_term
                    assert leaders_by_term.setdefault(term, replica.name) == replica.name


def test_cluster_without_seed_elects_leader(cluster_factory):
    cluster = cluster_factory(RaftReplica, leader=None)
    cluster.run_ms(1500)
    leaders = [r for r in cluster.values() if r.role is Role.LEADER]
    assert len(leaders) == 1


def test_duplicate_client_command_applied_once(cluster_factory):
    cluster = cluster_factory(RaftReplica)
    cluster.run_ms(5)
    cmd = cluster.client.put("s0", "ctr", "one")
    cluster.run_ms(100)
    # re-send the same command (same request id), as a retrying client would
    from repro.protocols.messages import ClientRequest
    cluster.client.send("s0", ClientRequest(command=cmd))
    cluster.run_ms(200)
    leader = cluster["s0"]
    assert leader.store.version("ctr") == 1
