"""GroupMux transport: envelope cost model, coalescing, beacon plumbing.

The envelope cost tests pin the satellite bugfix: messages without
`size_bytes`/`command_count` fall back to 64 B / 0 commands in
`NodeCosts.cost`, and `HostEnvelope` implements BOTH so a batch charges
the sum of its inner payloads plus ONE header — undercharging nothing,
and amortizing exactly (k-1) `per_message` units.
"""

import pytest

from repro.metrics.recorder import MetricsRecorder
from repro.protocols.messages import (
    HEADER_BYTES,
    AppendEntries,
    HostBeacon,
    HostEnvelope,
    MuxedMessage,
    payload_command_count,
    payload_size_bytes,
)
from repro.protocols.mux import GroupMux, MuxDirectory
from repro.sim.events import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Host, Node, NodeCosts
from repro.sim.topology import symmetric_lan


class Bare:
    """A message with neither size_bytes nor command_count."""


class Sized:
    def __init__(self, size, count):
        self._size, self._count = size, count

    def size_bytes(self):
        return self._size

    def command_count(self):
        return self._count


# ---------------------------------------------------------------------------
# Envelope cost model (the satellite bugfix, pinned)
# ---------------------------------------------------------------------------


def wrap(*payloads):
    return HostEnvelope(src_host="h0.a", dst_host="h0.b", items=[
        MuxedMessage(src="s", dst="d", group=0, payload=p) for p in payloads
    ])


def test_envelope_size_falls_back_to_64_bytes_per_bare_message():
    env = wrap(Bare(), Bare(), Bare())
    assert env.size_bytes() == HEADER_BYTES + 3 * 64
    assert env.command_count() == 0.0


def test_envelope_sums_inner_sizes_plus_one_header():
    env = wrap(Sized(100, 2.0), Sized(4096, 0.25), Bare())
    assert env.size_bytes() == HEADER_BYTES + 100 + 4096 + 64
    assert env.command_count() == pytest.approx(2.25)
    assert env.message_count() == 3


def test_envelope_cost_amortizes_exactly_the_headers():
    # per_byte=0 isolates the header term: batching three messages into
    # one envelope saves exactly two per_message units — and nothing of
    # the real command work.
    costs = NodeCosts(per_message=30, per_command=300, per_byte=0.0)
    payloads = [Sized(100, 1.0), Sized(200, 0.5), Bare()]
    separate = sum(costs.cost(p) for p in payloads)
    batched = costs.cost(wrap(*payloads))
    assert separate - batched == 2 * costs.per_message


def test_envelope_counts_beacon_bytes():
    beacon = HostBeacon(src_host="h0.a", beats={0: ("r0", 1), 1: ("r1", 1)})
    env = wrap(Bare())
    env.beacon = beacon
    assert env.size_bytes() == HEADER_BYTES + 64 + beacon.size_bytes()
    assert env.message_count() == 2


def test_payload_helpers_match_nodecosts_fallbacks():
    costs = NodeCosts(per_message=0, per_command=1, per_byte=1.0)
    bare = Bare()
    assert payload_size_bytes(bare) == 64
    assert payload_command_count(bare) == 0.0
    assert costs.cost(bare) == 64  # the fallback NodeCosts itself uses
    assert payload_size_bytes(Sized(10, 3.0)) == 10
    assert payload_command_count(Sized(10, 3.0)) == 3.0


def test_real_append_entries_rides_with_its_own_sizes():
    msg = AppendEntries(term=1, leader="l", prev_index=-1, prev_term=-1,
                        entries=[], leader_commit=-1)
    env = wrap(msg)
    assert env.size_bytes() == HEADER_BYTES + msg.size_bytes()
    assert env.command_count() == msg.command_count()


# ---------------------------------------------------------------------------
# The transport itself
# ---------------------------------------------------------------------------


class Member(Node):
    """A minimal muxed endpoint."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = []

    def on_message(self, src, message):
        self.received.append((src, message))


def build_pair(flush_interval=500, beacon_interval=None):
    """Two hosts, two groups, one member of each group on each host."""
    sim = Simulator()
    network = Network(sim, symmetric_lan(2))
    metrics = MetricsRecorder()
    directory = MuxDirectory()
    hosts, muxes, members = {}, {}, {}
    for si, site in enumerate(("s0", "s1")):
        host = Host(f"h0.{site}", sim, site=site)
        hosts[site] = host
        mux = GroupMux(host, sim, network, directory,
                       flush_interval=flush_interval,
                       beacon_interval=beacon_interval, metrics=metrics)
        muxes[site] = mux
        for group in (0, 1):
            member = Member(f"g{group}_r_{site}", sim, network, site=site,
                            host=host)
            mux.register(member, group)
            members[(group, site)] = member
    return sim, network, metrics, muxes, members


def test_coalesces_many_messages_into_one_envelope():
    sim, network, metrics, muxes, members = build_pair()
    for group in (0, 1):
        for i in range(3):
            members[(group, "s0")].send(f"g{group}_r_s1", f"m{group}.{i}")
    sim.run()
    # All six inner messages crossed in ONE envelope.
    assert metrics.counters["coalesce_envelopes"] == 1
    assert metrics.counters["coalesce_messages"] == 6
    for group in (0, 1):
        got = [m for _, m in members[(group, "s1")].received]
        assert got == [f"m{group}.0", f"m{group}.1", f"m{group}.2"]


def test_same_host_messages_bypass_the_envelope():
    sim, network, metrics, muxes, members = build_pair()
    members[(0, "s0")].send("g1_r_s0", "local")
    sim.run()
    assert metrics.counters.get("coalesce_envelopes", 0) == 0
    assert members[(1, "s0")].received == [("g0_r_s0", "local")]


def test_unmuxed_destinations_go_direct():
    sim, network, metrics, muxes, members = build_pair()
    outsider = Member("client", sim, network, site="s1")
    members[(0, "s0")].send("client", "hi")
    sim.run()
    assert outsider.received == [("g0_r_s0", "hi")]
    assert metrics.counters.get("coalesce_envelopes", 0) == 0


def test_blocked_replica_link_drops_inner_message_only():
    sim, network, metrics, muxes, members = build_pair()
    network.block("g0_r_s0", "g0_r_s1")
    members[(0, "s0")].send("g0_r_s1", "blocked")
    members[(1, "s0")].send("g1_r_s1", "fine")
    sim.run()
    assert members[(0, "s1")].received == []
    assert members[(1, "s1")].received == [("g1_r_s0", "fine")]
    assert network.messages_dropped == 1


def test_crashed_destination_drops_at_unpack():
    sim, network, metrics, muxes, members = build_pair()
    members[(0, "s1")].crash()
    members[(0, "s0")].send("g0_r_s1", "late")
    members[(1, "s0")].send("g1_r_s1", "fine")
    sim.run()
    assert members[(0, "s1")].received == []
    assert members[(1, "s1")].received == [("g1_r_s0", "fine")]
    # The envelope itself was transmitted fine; the discarded item is mux
    # bookkeeping, not a network drop (sent/dropped stay coherent).
    assert metrics.counters["coalesce_items_dropped"] == 1
    assert network.messages_dropped == 0


def test_host_crash_loses_the_buffered_flush():
    sim, network, metrics, muxes, members = build_pair(flush_interval=500)
    members[(0, "s0")].send("g0_r_s1", "doomed")
    # The machine dies before the flush tick: the buffer dies with it —
    # nothing was transmitted, so it counts as a lost item, not a network
    # drop.
    muxes["s0"].host.crash()
    sim.run()
    assert members[(0, "s1")].received == []
    assert metrics.counters["coalesce_items_dropped"] == 1
    assert network.messages_dropped == 0
    assert metrics.counters.get("coalesce_envelopes", 0) == 0


def test_flush_charges_one_envelope_cost_to_the_receiving_host():
    sim, network, metrics, muxes, members = build_pair()
    for i in range(4):
        members[(0, "s0")].send("g0_r_s1", Sized(100, 0.0))
    sim.run()
    costs = muxes["s1"].costs
    expected = costs.cost(wrap(*[Sized(100, 0.0)] * 4))
    assert muxes["s1"].host.cpu_busy_us == expected
    # The members were delivered without re-charging the host.
    assert all(m.cpu_busy_us == 0 for m in
               (members[(0, "s1")], members[(1, "s1")]))
