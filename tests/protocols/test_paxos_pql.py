"""PQL on MultiPaxos — the optimization in its original home."""

import pytest

from repro.protocols.paxos_pql import PaxosPQLReplica
from repro.sim.units import ms


def build(cluster_factory, **kwargs):
    kwargs.setdefault("config_kwargs", {})
    kwargs["config_kwargs"].setdefault("lease_duration", ms(500))
    kwargs["config_kwargs"].setdefault("lease_renew_interval", ms(100))
    return cluster_factory(PaxosPQLReplica, **kwargs)


def test_acceptor_serves_local_read(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(100)
    cluster.client.put("s0", "k", "v")
    cluster.run_ms(150)
    read = cluster.client.get("s2", "k")
    cluster.run_ms(50)
    reply = cluster.client.reply_for(read)
    assert reply.ok and reply.local_read and reply.value == "v"
    assert cluster["s2"].local_reads_served == 1


def test_choose_waits_for_lease_holders(cluster_factory):
    """The modified Learn: f+1 acceptances are not enough while an active
    holder has not accepted."""
    cluster = build(cluster_factory)
    cluster.run_ms(100)
    cluster["s2"].crash()
    cmd = cluster.client.put("s0", "k", "v")
    cluster.run_ms(150)
    # s2 holds a valid lease; {s0,s1} alone must not choose
    assert cluster.client.reply_for(cmd) is None
    cluster.run_ms(900)  # lease lapses, majority suffices
    assert cluster.client.reply_for(cmd) is not None


def test_read_waits_for_pending_instance(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(100)
    replica = cluster["s1"]
    replica._last_modified["hot"] = replica.commit_index + 50
    read = cluster.client.get("s1", "hot")
    cluster.run_ms(20)
    assert cluster.client.reply_for(read) is None
    replica._last_modified["hot"] = replica.commit_index
    cluster.run_ms(100)
    assert cluster.client.reply_for(read) is not None


def test_lease_loss_falls_back_to_log_path(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(100)
    cluster.network.isolate("s2")
    cluster.run_ms(900)
    assert not cluster["s2"].leases.has_quorum_lease()


def test_state_converges_across_acceptors(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(100)
    for i in range(4):
        cluster.client.put("s0", f"k{i}", f"v{i}")
    cluster.run_ms(400)
    snaps = [replica.store.snapshot() for replica in cluster.values()]
    assert snaps[0] == snaps[1] == snaps[2]
    assert len(snaps[0]) == 4
