"""Quorum-lease manager."""

import pytest

from repro.protocols.pql import RaftStarPQLReplica
from repro.sim.units import ms, sec


def build(cluster_factory, **kwargs):
    kwargs.setdefault("config_kwargs", {})
    kwargs["config_kwargs"].setdefault("lease_duration", ms(500))
    kwargs["config_kwargs"].setdefault("lease_renew_interval", ms(100))
    return cluster_factory(RaftStarPQLReplica, **kwargs)


def test_everyone_gets_quorum_lease(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(100)
    for replica in cluster.values():
        assert replica.leases.has_quorum_lease()


def test_grant_counts_include_self(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(100)
    assert cluster["s0"].leases.valid_grant_count() == 3


def test_active_holders_tracks_acks(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(100)
    holders = cluster["s0"].leases.active_holders()
    assert holders == frozenset({"s0", "s1", "s2"})


def test_lease_expires_without_renewal(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(100)
    # cut s2 off: its held leases lapse once the last grants expire
    cluster.network.isolate("s2")
    cluster.run_ms(900)
    assert not cluster["s2"].leases.has_quorum_lease()


def test_crashed_holder_drops_out_of_active_set(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(100)
    cluster["s2"].crash()
    cluster.run_ms(900)
    assert "s2" not in cluster["s0"].leases.active_holders()


def test_partitioned_replica_loses_lease_but_majority_keeps_it(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(100)
    cluster.network.isolate("s1")
    cluster.run_ms(900)
    assert not cluster["s1"].leases.has_quorum_lease()
    assert cluster["s0"].leases.has_quorum_lease()
    assert cluster["s2"].leases.has_quorum_lease()


def test_lease_restored_after_heal(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(100)
    cluster.network.isolate("s1")
    cluster.run_ms(900)
    cluster.network.heal()
    cluster.run_ms(300)
    assert cluster["s1"].leases.has_quorum_lease()


def test_crash_clears_lease_state(cluster_factory):
    cluster = build(cluster_factory)
    cluster.run_ms(100)
    replica = cluster["s1"]
    replica.crash()
    assert replica.leases.valid_grant_count() == 0
