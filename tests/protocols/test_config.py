"""Cluster configuration."""

import pytest

from repro.protocols.config import ClusterConfig, geo_cluster, single_site_cluster


def test_quorum_math_odd():
    cfg = single_site_cluster(5)
    assert cfg.n == 5 and cfg.f == 2 and cfg.majority == 3


def test_quorum_math_even():
    cfg = single_site_cluster(4)
    assert cfg.f == 1 and cfg.majority == 2


def test_quorum_math_three():
    cfg = single_site_cluster(3)
    assert cfg.f == 1 and cfg.majority == 2


def test_peers_of_excludes_self():
    cfg = single_site_cluster(3)
    assert set(cfg.peers_of("s0")) == {"s1", "s2"}


def test_owner_round_robin():
    cfg = single_site_cluster(3)
    owners = [cfg.owner_of(i) for i in range(6)]
    assert owners == ["s0", "s1", "s2", "s0", "s1", "s2"]
    assert cfg.owned_by("s1", 4)


def test_empty_replicas_rejected():
    with pytest.raises(ValueError):
        ClusterConfig(replicas={})


def test_unknown_initial_leader_rejected():
    with pytest.raises(ValueError):
        ClusterConfig(replicas={"a": "a"}, initial_leader="ghost")


def test_geo_cluster_naming():
    cfg = geo_cluster(["oregon", "seoul"])
    assert cfg.names == ("r_oregon", "r_seoul")
    assert cfg.site_of("r_seoul") == "seoul"


def test_site_lookup():
    cfg = single_site_cluster(2, prefix="n")
    assert cfg.site_of("n1") == "n1"
