"""Property-based tests on Mencius' index arithmetic and safety under
randomized multi-owner traffic."""

from hypothesis import given, settings, strategies as st

from repro.kvstore.checker import HistoryChecker
from repro.protocols.config import single_site_cluster
from repro.protocols.mencius import RaftStarMenciusReplica
from repro.sim.units import ms


@given(st.integers(min_value=0, max_value=200), st.integers(min_value=2, max_value=7))
def test_ownership_partition(index, n):
    """Every index has exactly one owner; ownership is periodic."""
    cfg = single_site_cluster(n)
    owner = cfg.owner_of(index)
    assert owner == cfg.names[index % n]
    assert cfg.owner_of(index + n) == owner
    assert sum(1 for name in cfg.names if cfg.owned_by(name, index)) == 1


@given(st.integers(min_value=0, max_value=60), st.integers(min_value=0, max_value=2))
def test_next_owned_at_or_above(start, rank):
    """The next owned index is the least owned index >= start."""
    from tests.protocols.conftest import MiniCluster

    cluster = MiniCluster(RaftStarMenciusReplica, leader=None)
    replica = cluster[f"s{rank}"]
    result = replica._my_next_owned_at_or_above(start)
    assert result >= start
    assert result % 3 == rank
    assert result - 3 < start  # least such index


@settings(deadline=None, max_examples=10)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=2),
                          st.integers(min_value=0, max_value=9)),
                min_size=1, max_size=12),
       st.integers(min_value=0, max_value=3))
def test_random_traffic_preserves_prefix_agreement(ops, seed):
    """Random interleavings of client writes at random replicas never make
    applied logs diverge."""
    from tests.protocols.conftest import MiniCluster

    cluster = MiniCluster(
        RaftStarMenciusReplica, leader=None, seed=seed,
        replica_kwargs={"execution_mode": "ordered"},
        config_kwargs={"skip_interval": ms(10)},
    )
    checker = HistoryChecker()
    for replica in cluster.values():
        replica.on_apply_hooks.append(checker.record_apply)
    cluster.run_ms(5)
    for target, key in ops:
        cluster.client.put(f"s{target}", f"k{key}", f"v{len(checker.events)}")
        cluster.run_ms(15)
    cluster.run_ms(500)
    assert checker.check_prefix_agreement() == []
