"""Immutable states and maps."""

import pytest
from hypothesis import given, strategies as st

from repro.core.state import FMap, State, fmap_const


def test_fmap_lookup_and_set():
    m = FMap({"a": 1})
    assert m["a"] == 1
    m2 = m.set("b", 2)
    assert m2["b"] == 2 and "b" not in m


def test_fmap_equality_and_hash():
    assert FMap({"a": 1, "b": 2}) == FMap({"b": 2, "a": 1})
    assert hash(FMap({"a": 1})) == hash(FMap({"a": 1}))


def test_fmap_equality_with_dict():
    assert FMap({"a": 1}) == {"a": 1}


def test_fmap_update_and_remove():
    m = FMap({"a": 1}).update({"b": 2, "c": 3}).remove("a")
    assert dict(m) == {"b": 2, "c": 3}


def test_fmap_const():
    m = fmap_const(["x", "y"], 0)
    assert m["x"] == 0 and m["y"] == 0 and len(m) == 2


def test_fmap_mixed_key_types():
    m = FMap({1: "a", "k": "b"})
    assert m[1] == "a" and m["k"] == "b"


def test_state_with_replaces():
    s = State({"x": 1, "y": 2})
    s2 = s.with_(x=10)
    assert s2["x"] == 10 and s["x"] == 1 and s2["y"] == 2


def test_state_with_unknown_var_raises():
    with pytest.raises(KeyError):
        State({"x": 1}).with_(z=1)


def test_state_assign_allows_new_vars():
    s = State({"x": 1}).assign({"y": 2})
    assert s["y"] == 2


def test_state_restrict():
    s = State({"x": 1, "y": 2, "z": 3}).restrict(("x", "z"))
    assert set(s) == {"x", "z"}


def test_state_hash_equality():
    a = State({"x": FMap({"k": frozenset({1})})})
    b = State({"x": FMap({"k": frozenset({1})})})
    assert a == b and hash(a) == hash(b)
    assert len({a, b}) == 1


def test_state_pretty():
    text = State({"x": 1}).pretty()
    assert "x = 1" in text


@given(st.dictionaries(st.sampled_from("abcde"), st.integers(), min_size=1))
def test_fmap_roundtrip(d):
    assert dict(FMap(d)) == d


@given(st.dictionaries(st.sampled_from("abc"), st.integers(), min_size=1),
       st.sampled_from("abc"), st.integers())
def test_fmap_set_semantics(d, key, value):
    m = FMap(d).set(key, value)
    expected = dict(d)
    expected[key] = value
    assert dict(m) == expected
