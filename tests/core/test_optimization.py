"""Optimization diffing and the non-mutating classification (§4.2)."""

import pytest

from repro.core.action import Action, Clause
from repro.core.machine import SpecMachine
from repro.core.optimization import diff_optimization
from repro.core.state import State

G = Clause("g", "guard", lambda s, p: True)
U = Clause("u", "update", lambda s, p: s["x"] + 1, var="x")
NEW_GUARD = Clause("new-g", "guard", lambda s, p: s["x"] < 5)
NEW_UPDATE = Clause("new-u", "update", lambda s, p: s["aux"] + 1, var="aux")
BAD_UPDATE = Clause("bad-u", "update", lambda s, p: 0, var="x")


def base_machine():
    return SpecMachine(
        name="A", variables=("x",), constants={},
        init=lambda c: [State({"x": 0})],
        actions=[Action(name="Step", clauses=(G, U))],
    )


def optimized(actions, variables=("x", "aux")):
    return SpecMachine(
        name="A-delta", variables=variables, constants={},
        init=lambda c: [State({"x": 0, "aux": 0})],
        actions=actions,
    )


def test_unchanged_action_detected():
    diff = diff_optimization(base_machine(), optimized(
        [Action(name="Step", clauses=(G, U))]))
    assert len(diff.unchanged) == 1 and not diff.modified and not diff.added
    assert diff.non_mutating


def test_modified_action_detected():
    diff = diff_optimization(base_machine(), optimized(
        [Action(name="Step", clauses=(G, U, NEW_GUARD, NEW_UPDATE))]))
    assert len(diff.modified) == 1
    assert set(c.name for c in diff.modified[0].added_clauses) == {"new-g", "new-u"}
    assert diff.non_mutating


def test_added_action_detected():
    diff = diff_optimization(base_machine(), optimized([
        Action(name="Step", clauses=(G, U)),
        Action(name="Extra", clauses=(NEW_UPDATE,)),
    ]))
    assert [a.name for a in diff.added] == ["Extra"]
    assert diff.non_mutating


def test_deleted_clause_makes_action_added():
    """Footnote 2: removing a conjunct turns the subaction into an added one."""
    diff = diff_optimization(base_machine(), optimized(
        [Action(name="Step", clauses=(U,))]))  # guard g removed
    assert [a.name for a in diff.added] == ["Step"]


def test_added_action_writing_base_var_is_mutating():
    diff = diff_optimization(base_machine(), optimized([
        Action(name="Step", clauses=(G, U)),
        Action(name="Extra", clauses=(BAD_UPDATE,)),
    ]))
    assert not diff.non_mutating
    assert "writes base variable 'x'" in diff.mutating_writes()[0]


def test_modified_action_writing_base_var_is_mutating():
    other_bad = Clause("bad-2", "update", lambda s, p: 9, var="x")
    machine = SpecMachine(
        name="A-delta", variables=("x", "aux"), constants={},
        init=lambda c: [State({"x": 0, "aux": 0})],
        actions=[Action(name="Step", clauses=(G, NEW_UPDATE, other_bad))],
    )
    # Step has G but not U: treated as added (deleted clause), still mutating.
    diff = diff_optimization(base_machine(), machine)
    assert not diff.non_mutating


def test_added_guard_on_base_var_is_fine():
    """Figure 4c: `table[k] = {}` is a guard over A's state — allowed."""
    diff = diff_optimization(base_machine(), optimized(
        [Action(name="Step", clauses=(G, U, NEW_GUARD))]))
    assert diff.non_mutating


def test_dropping_base_variable_rejected():
    machine = SpecMachine(
        name="A-delta", variables=("aux",), constants={},
        init=lambda c: [State({"aux": 0})], actions=[],
    )
    with pytest.raises(ValueError):
        diff_optimization(base_machine(), machine)


def test_summary_text():
    diff = diff_optimization(base_machine(), optimized(
        [Action(name="Step", clauses=(G, U, NEW_UPDATE))]))
    text = diff.summary()
    assert "non-mutating" in text and "aux" in text
