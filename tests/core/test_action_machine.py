"""Actions and machines."""

import pytest

from repro.core.action import Action, Clause, guard, update
from repro.core.machine import SpecMachine
from repro.core.state import State


def counter_machine(limit=3):
    inc = Action(
        name="Inc",
        params={"by": lambda c, s: [1, 2]},
        clauses=(
            Clause("below-limit", "guard",
                   lambda s, p: s["n"] + p["by"] <= c_limit(limit)),
            Clause("bump", "update", lambda s, p: s["n"] + p["by"], var="n"),
        ),
    )
    return SpecMachine(
        name="counter", variables=("n",), constants={"limit": limit},
        init=lambda c: [State({"n": 0})], actions=[inc],
    )


def c_limit(limit):
    return limit


def test_guard_blocks_disabled_bindings():
    machine = counter_machine(limit=1)
    state = machine.initial_states()[0]
    transitions = list(machine.transitions_from(state))
    assert [dict(t.params)["by"] for t in transitions] == [1]


def test_apply_produces_next_state():
    machine = counter_machine()
    state = machine.initial_states()[0]
    nxt = machine.actions[0].apply(state, {"by": 2})
    assert nxt["n"] == 2


def test_updates_see_unprimed_state():
    """TLA+ semantics: all primed expressions read the pre-state."""
    swap = Action(
        name="Swap",
        clauses=(
            Clause("x-gets-y", "update", lambda s, p: s["y"], var="x"),
            Clause("y-gets-x", "update", lambda s, p: s["x"], var="y"),
        ),
    )
    state = State({"x": 1, "y": 2})
    nxt = swap.apply(state, {})
    assert nxt["x"] == 2 and nxt["y"] == 1


def test_duplicate_clause_names_rejected():
    with pytest.raises(ValueError):
        Action(name="Bad", clauses=(
            Clause("same", "guard", lambda s, p: True),
            Clause("same", "guard", lambda s, p: True),
        ))


def test_double_update_same_var_rejected():
    with pytest.raises(ValueError):
        Action(name="Bad", clauses=(
            Clause("a", "update", lambda s, p: 1, var="x"),
            Clause("b", "update", lambda s, p: 2, var="x"),
        ))


def test_update_clause_requires_var():
    with pytest.raises(ValueError):
        Clause("u", "update", lambda s, p: 1)


def test_guard_clause_rejects_var():
    with pytest.raises(ValueError):
        Clause("g", "guard", lambda s, p: True, var="x")


def test_invalid_kind_rejected():
    with pytest.raises(ValueError):
        Clause("c", "banana", lambda s, p: True)


def test_decorators():
    @guard("positive")
    def positive(s, p):
        return s["n"] > 0

    @update("reset", var="n")
    def reset(s, p):
        return 0

    assert positive.kind == "guard"
    assert reset.var == "n"


def test_with_clauses_extends():
    base = Action(name="A", clauses=(Clause("g", "guard", lambda s, p: True),))
    extended = base.with_clauses([Clause("u", "update", lambda s, p: 1, var="x")])
    assert len(extended.clauses) == 2
    assert extended.name == "A"


def test_empty_domain_yields_no_bindings():
    action = Action(name="A", params={"x": lambda c, s: []},
                    clauses=(Clause("g", "guard", lambda s, p: True),))
    assert list(action.bindings({}, State({"n": 0}))) == []


def test_machine_rejects_bad_init_vars():
    machine = SpecMachine(
        name="bad", variables=("x",), constants={},
        init=lambda c: [State({"y": 1})], actions=[],
    )
    with pytest.raises(ValueError):
        machine.initial_states()


def test_machine_action_lookup():
    machine = counter_machine()
    assert machine.action("Inc").name == "Inc"
    with pytest.raises(KeyError):
        machine.action("Nope")


def test_self_loops_suppressed():
    noop = Action(name="Noop", clauses=(
        Clause("same", "update", lambda s, p: s["n"], var="n"),))
    machine = SpecMachine(name="m", variables=("n",), constants={},
                          init=lambda c: [State({"n": 0})], actions=[noop])
    assert machine.successors(machine.initial_states()[0]) == []
