"""The §4.3 porting algorithm, end to end on the Figure 4 example."""

import pytest

from repro.core.action import Action, Clause
from repro.core.explorer import Explorer
from repro.core.machine import SpecMachine
from repro.core.optimization import diff_optimization
from repro.core.porting import (
    PortSpec,
    PortingError,
    port_optimization,
    ported_to_optimized_mapping,
    ported_to_target_mapping,
)
from repro.core.refinement import check_refinement
from repro.core.state import State
from repro.specs import kvexample as kv


def test_target_refines_base():
    """Precondition of the port: B => A under the Figure 4 mapping."""
    result = check_refinement(kv.log_store(), kv.kv_store(), kv.log_to_kv_mapping())
    assert result.ok and result.complete


def test_optimization_is_non_mutating():
    diff = diff_optimization(kv.kv_store(), kv.kv_store_sized())
    assert diff.non_mutating
    assert diff.new_variables == ("size",)
    assert len(diff.modified) == 1 and diff.modified[0].base.name == "Put"


def test_generated_machine_structure():
    """B∆ has B's actions with the translated clauses spliced in — the shape
    of Figure 4d."""
    ported = kv.log_store_sized()
    assert ported.variables == ("logs", "output", "size")
    write = ported.action("Write")
    clause_names = [c.name for c in write.clauses]
    assert "write-contiguous" in clause_names          # B's own guard
    assert any("put-only-fresh" in n for n in clause_names)   # ported guard
    assert any("put-bumps-size" in n for n in clause_names)   # ported update
    read = ported.action("Read")
    assert len(read.clauses) == 1  # Case-2: carried over unchanged


def test_ported_machine_executes_like_figure_4d():
    ported = kv.log_store_sized()
    state = ported.initial_states()[0]
    assert state["size"] == 0
    write = ported.action("Write")
    binding = {"i": 0, "v": "a"}
    assert write.enabled(state, binding)
    nxt = write.apply(state, binding)
    assert nxt["size"] == 1
    assert nxt["logs"][0] == ("a",)
    # second write to the same index now disabled (ported fresh-only guard)
    assert not write.enabled(nxt, binding)
    # writing index 1 before 0... index 1 is allowed (contiguous), index 1
    # fresh: enabled
    assert write.enabled(nxt, {"i": 1, "v": "b"})


def test_ported_refines_optimized():
    ported = kv.log_store_sized()
    mapping = ported_to_optimized_mapping(
        kv.port_spec(), kv.kv_store(), kv.kv_store_sized(), kv.log_store())
    result = check_refinement(ported, kv.kv_store_sized(), mapping)
    assert result.ok and result.complete


def test_ported_refines_target():
    ported = kv.log_store_sized()
    result = check_refinement(ported, kv.log_store(),
                              ported_to_target_mapping(kv.log_store()))
    assert result.ok and result.complete


def test_ported_inherits_optimization_invariant():
    result = Explorer(kv.log_store_sized(),
                      invariants={"size": kv.size_matches_nonempty_entries}).run()
    assert result.ok and result.complete


def test_port_refuses_mutating_optimization():
    base = kv.kv_store()
    bad_clause = Clause("clobber", "update",
                        lambda s, p: s["table"], var="table")
    mutant = SpecMachine(
        name="bad-delta", variables=("table", "output", "size"),
        constants=dict(base.constants),
        init=kv.kv_store_sized().init,
        actions=[
            base.action("Put"),
            base.action("Get"),
            Action(name="Clobber", clauses=(bad_clause,)),
        ],
    )
    with pytest.raises(PortingError, match="not non-mutating"):
        port_optimization(base, mutant, kv.log_store(), kv.port_spec())


def test_port_requires_complete_correspondence():
    spec = PortSpec(state_map=kv.log_to_kv_mapping(),
                    correspondence={"Write": ("Put",)})  # Read missing
    with pytest.raises(PortingError, match="no correspondence"):
        port_optimization(kv.kv_store(), kv.kv_store_sized(), kv.log_store(), spec)


def test_port_detects_update_collision():
    base = kv.kv_store()
    # Two modified A-actions both writing `size`, both implied by Write.
    extra = Clause("also-bumps", "update", lambda s, p: s["size"] + 1, var="size")
    delta = SpecMachine(
        name="colliding-delta", variables=("table", "output", "size"),
        constants=dict(base.constants),
        init=kv.kv_store_sized().init,
        actions=[
            base.action("Put").with_clauses([kv.PUT_BUMPS_SIZE]),
            base.action("Get").with_clauses([extra]),
        ],
    )
    spec = PortSpec(state_map=kv.log_to_kv_mapping(),
                    correspondence={"Write": ("Put", "Get"), "Read": ()})
    with pytest.raises(PortingError, match="collision"):
        port_optimization(base, delta, kv.log_store(), spec)


def test_added_action_translated_through_mapping():
    """Case-1: an added subaction reading A's state is rewritten through f."""
    base = kv.kv_store()
    snapshot = Clause(
        "snapshot-count", "update",
        lambda s, p: s["size"] + sum(1 for k in s["table"] if s["table"][k] != ()),
        var="size")
    delta = SpecMachine(
        name="delta-with-added", variables=("table", "output", "size"),
        constants=dict(base.constants),
        init=kv.kv_store_sized().init,
        actions=[base.action("Put"), base.action("Get"),
                 Action(name="Recount", clauses=(snapshot,))],
    )
    ported = port_optimization(base, delta, kv.log_store(), kv.port_spec())
    recount = ported.action("Recount")
    state = ported.initial_states()[0]
    filled = state.assign({"logs": state["logs"].set(0, ("a",))})
    nxt = recount.apply(filled, {})
    assert nxt["size"] == 1  # read `table` through f(logs)


def test_stutter_only_correspondence_allowed():
    spec = PortSpec(state_map=kv.log_to_kv_mapping(),
                    correspondence={"Write": ("Put",), "Read": ()})
    ported = port_optimization(kv.kv_store(), kv.kv_store_sized(),
                               kv.log_store(), spec)
    assert len(ported.action("Read").clauses) == 1
