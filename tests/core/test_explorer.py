"""Bounded model checker."""

import pytest

from repro.core.action import Action, Clause
from repro.core.explorer import Explorer
from repro.core.machine import SpecMachine
from repro.core.state import State


def counter(limit):
    inc = Action(name="Inc", clauses=(
        Clause("below", "guard", lambda s, p: s["n"] < limit),
        Clause("bump", "update", lambda s, p: s["n"] + 1, var="n"),
    ))
    return SpecMachine(name="ctr", variables=("n",), constants={},
                       init=lambda c: [State({"n": 0})], actions=[inc])


def test_explores_whole_space():
    result = Explorer(counter(10)).run()
    assert result.states_visited == 11
    assert result.complete
    assert result.diameter == 10


def test_invariant_violation_with_trace():
    explorer = Explorer(counter(10), invariants={"small": lambda s, c: s["n"] < 4})
    result = explorer.run()
    assert not result.ok
    violation = result.violations[0]
    assert violation.state["n"] == 4
    assert len(violation.trace) == 4
    assert "small" in violation.describe()


def test_invariant_exception_reported_as_violation():
    explorer = Explorer(counter(3), invariants={
        "boom": lambda s, c: 1 / (3 - s["n"]) > 0})
    result = explorer.run()
    assert not result.ok
    assert "ZeroDivisionError" in result.violations[0].invariant


def test_max_states_bound_marks_incomplete():
    result = Explorer(counter(1000), max_states=10).run()
    assert not result.complete
    assert result.states_visited == 10


def test_collect_all_violations():
    explorer = Explorer(counter(5),
                        invariants={"tiny": lambda s, c: s["n"] < 3},
                        stop_at_first_violation=False)
    result = explorer.run()
    assert len(result.violations) == 3  # n in {3, 4, 5}


def test_invariant_checked_on_initial_state():
    explorer = Explorer(counter(3), invariants={"never": lambda s, c: False})
    result = explorer.run()
    assert result.violations[0].trace == []


def test_branching_machine_deduplicates():
    """Two paths to the same state count it once."""
    a = Action(name="A", clauses=(
        Clause("g", "guard", lambda s, p: s["x"] == 0),
        Clause("u", "update", lambda s, p: 1, var="x"),
    ))
    b = Action(name="B", clauses=(
        Clause("g2", "guard", lambda s, p: s["x"] == 0),
        Clause("u2", "update", lambda s, p: 1, var="x"),
    ))
    machine = SpecMachine(name="m", variables=("x",), constants={},
                          init=lambda c: [State({"x": 0})], actions=[a, b])
    result = Explorer(machine).run()
    assert result.states_visited == 2
    assert result.transitions_explored == 2


def test_reachable_states_listing():
    explorer = Explorer(counter(3))
    explorer.run()
    values = sorted(s["n"] for s in explorer.reachable_states())
    assert values == [0, 1, 2, 3]
