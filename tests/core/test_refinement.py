"""Refinement checking on purpose-built tiny machines."""

import pytest

from repro.core.action import Action, Clause
from repro.core.machine import SpecMachine
from repro.core.refinement import (
    RefinementMapping,
    check_refinement,
    projection_mapping,
)
from repro.core.state import State


def counter(name, limit, step):
    inc = Action(name=f"Inc{step}", clauses=(
        Clause("below", "guard", lambda s, p: s["n"] + step <= limit),
        Clause("bump", "update", lambda s, p: s["n"] + step, var="n"),
    ))
    return SpecMachine(name=name, variables=("n",), constants={},
                       init=lambda c: [State({"n": 0})], actions=[inc])


IDENTITY = RefinementMapping("id", lambda s: s)


def test_same_machine_refines_itself():
    m = counter("m", 5, 1)
    assert check_refinement(m, m, IDENTITY).ok


def test_step2_refines_step1_with_two_high_steps():
    low = counter("low", 6, 2)
    high = counter("high", 6, 1)
    strict = check_refinement(low, high, IDENTITY, max_high_steps=1)
    assert not strict.ok  # one low step jumps by 2
    relaxed = check_refinement(low, high, IDENTITY, max_high_steps=2)
    assert relaxed.ok


def test_step1_refines_step2_fails():
    """The fine-grained machine reaches odd states the coarse one cannot."""
    low = counter("low", 6, 1)
    high = counter("high", 6, 2)
    result = check_refinement(low, high, IDENTITY, max_high_steps=3)
    assert not result.ok
    assert "no high counterpart" in result.failures[0].describe() or True
    assert result.failures[0].mapped_to["n"] % 2 == 1


def test_stuttering_steps_allowed():
    """Low steps invisible under the mapping are stutters."""
    tick = Action(name="Tick", clauses=(
        Clause("below", "guard", lambda s, p: s["aux"] < 3),
        Clause("bump-aux", "update", lambda s, p: s["aux"] + 1, var="aux"),
    ))
    low = SpecMachine(name="low", variables=("n", "aux"), constants={},
                      init=lambda c: [State({"n": 0, "aux": 0})], actions=[tick])
    high = counter("high", 5, 1)
    mapping = projection_mapping("drop-aux", ("n",))
    result = check_refinement(low, high, mapping)
    assert result.ok
    assert result.stutters == 3


def test_init_mismatch_detected():
    low = SpecMachine(name="low", variables=("n",), constants={},
                      init=lambda c: [State({"n": 7})], actions=[])
    high = counter("high", 5, 1)
    result = check_refinement(low, high, IDENTITY)
    assert not result.ok
    assert result.init_failures


def test_summary_strings():
    m = counter("m", 3, 1)
    result = check_refinement(m, m, IDENTITY)
    assert "HOLDS" in result.summary()
    bad = check_refinement(counter("l", 4, 1), counter("h", 4, 2), IDENTITY)
    assert "FAILS" in bad.summary()


def test_observed_correspondence_recorded():
    m = counter("m", 3, 1)
    mapping = RefinementMapping("id", lambda s: s,
                                action_map={"Inc1": ("Inc1",)})
    result = check_refinement(m, m, mapping)
    assert result.observed_correspondence["Inc1"] == {"Inc1"}


def test_max_failures_caps_reporting():
    low = counter("low", 10, 1)
    high = counter("high", 10, 2)
    result = check_refinement(low, high, IDENTITY, max_failures=2)
    assert len(result.failures) == 2
