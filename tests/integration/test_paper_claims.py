"""The paper's §5 claims, asserted end to end at reduced scale.

These are the qualitative statements the reproduction must preserve (who
wins, in which direction); EXPERIMENTS.md records the quantitative factors.
"""

import pytest

from repro.bench.harness import ExperimentSpec, run_experiment
from repro.workload.ycsb import WorkloadConfig


def run(protocol, *, clients=6, read_fraction=0.9, conflict=0.05,
        value_size=8, mode=None, leader="oregon", duration=4.0, seed=3):
    return run_experiment(ExperimentSpec(
        protocol=protocol,
        leader_site=leader,
        clients_per_region=clients,
        duration_s=duration,
        warmup_s=1.0,
        cooldown_s=0.5,
        workload=WorkloadConfig(read_fraction=read_fraction,
                                conflict_rate=conflict, value_size=value_size),
        execution_mode=mode,
        seed=seed,
    ))


# ---- Figure 9a claims -------------------------------------------------------

def test_pql_reads_are_local_everywhere():
    result = run("raftstar-pql")
    assert result.local_read_fraction > 0.9
    assert result.read_latency["followers"]["p50"] < 5.0  # ~1 ms in the paper
    assert result.read_latency["leader"]["p50"] < 5.0


def test_ll_reads_local_only_at_leader():
    result = run("leaderlease")
    assert result.read_latency["leader"]["p50"] < 5.0
    assert result.read_latency["followers"]["p50"] > 20.0


def test_raft_reads_pay_a_wan_round_trip():
    result = run("raft")
    assert result.read_latency["leader"]["p50"] > 50.0
    assert result.read_latency["followers"]["p50"] > 100.0
    assert result.local_read_fraction == 0.0


def test_raftstar_similar_latency_to_raft():
    raft = run("raft")
    raftstar = run("raftstar")
    for group in ("leader", "followers"):
        a = raft.read_latency[group]["p50"]
        b = raftstar.read_latency[group]["p50"]
        assert abs(a - b) / a < 0.25


# ---- Figure 9b claim --------------------------------------------------------

def test_pql_writes_slower_than_raft_writes():
    """PQL waits for lease holders; Raft picks the fastest majority."""
    pql = run("raftstar-pql")
    raft = run("raft")
    assert pql.write_latency["leader"]["p50"] > raft.write_latency["leader"]["p50"]


# ---- Figure 9c claim --------------------------------------------------------

@pytest.mark.slow
def test_pql_peak_throughput_beats_baselines_at_high_read_percentage():
    pql = run("raftstar-pql", clients=40, read_fraction=0.99, duration=5.0)
    raft = run("raft", clients=40, read_fraction=0.99, duration=5.0)
    assert pql.throughput_ops > 1.4 * raft.throughput_ops


# ---- Figure 9d claim --------------------------------------------------------

@pytest.mark.slow
def test_pql_speedup_decreases_with_conflict_rate():
    lo = run("raftstar-pql", clients=25, conflict=0.0, duration=5.0)
    hi = run("raftstar-pql", clients=25, conflict=0.5, duration=5.0)
    assert lo.throughput_ops > hi.throughput_ops


# ---- Figure 10 claims -------------------------------------------------------

@pytest.mark.slow
def test_mencius_peak_beats_single_leader_cpu_bound():
    mencius = run("mencius", clients=60, read_fraction=0.0, conflict=0.0,
                  mode="commutative", duration=5.0)
    raft = run("raft", clients=60, read_fraction=0.0, conflict=0.0, duration=5.0)
    assert mencius.throughput_ops > 1.2 * raft.throughput_ops


def test_raft_oregon_beats_raft_seoul():
    oregon = run("raft", read_fraction=0.0, leader="oregon")
    seoul = run("raft", read_fraction=0.0, leader="seoul")
    assert (oregon.write_latency["leader"]["p50"]
            < seoul.write_latency["leader"]["p50"])


def test_mencius_commutative_latency_below_ordered():
    ordered = run("mencius", read_fraction=0.0, conflict=1.0, mode="ordered")
    commutative = run("mencius", read_fraction=0.0, conflict=0.0,
                      mode="commutative")
    assert (commutative.write_latency["leader"]["p50"]
            < ordered.write_latency["leader"]["p50"])


def test_raft_oregon_leader_latency_lowest_of_all_systems():
    """Figure 10c: 'the leader of Raft-Oregon processes requests with the
    lowest latency'."""
    raft = run("raft", read_fraction=0.0, leader="oregon")
    mencius = run("mencius", read_fraction=0.0, conflict=0.0, mode="commutative")
    assert (raft.write_latency["leader"]["p50"]
            <= mencius.write_latency["leader"]["p50"])
