"""Request record aggregation."""

from repro.metrics.recorder import MetricsRecorder, RequestRecord
from repro.protocols.types import OpType
from repro.sim.units import ms, sec


def rec(start_ms, end_ms, site="oregon", op=OpType.PUT, ok=True, local=False):
    return RequestRecord(client="c", site=site, server=f"r_{site}", op=op,
                         start=ms(start_ms), end=ms(end_ms), ok=ok,
                         local_read=local)


def test_failures_counted_not_recorded():
    metrics = MetricsRecorder()
    metrics.add(rec(0, 10, ok=False))
    assert metrics.failures == 1 and metrics.records == []


def test_window_filters_by_start_and_end():
    metrics = MetricsRecorder()
    metrics.add(rec(0, 10))      # starts before window
    metrics.add(rec(100, 150))   # inside
    metrics.add(rec(900, 1100))  # ends after window
    inside = metrics.window(ms(50), ms(1000))
    assert len(inside) == 1


def test_throughput():
    metrics = MetricsRecorder()
    for i in range(100):
        metrics.add(rec(100 + i, 101 + i))
    assert metrics.throughput_ops(ms(100), ms(1100)) == 100.0


def test_latency_summary():
    metrics = MetricsRecorder()
    metrics.add(rec(0, 50))
    metrics.add(rec(0, 100))
    summary = metrics.latency_summary_ms(0, sec(1))
    assert summary["count"] == 2
    assert summary["max"] == 100.0


def test_split_by_site():
    metrics = MetricsRecorder()
    metrics.add(rec(0, 50, site="oregon"))
    metrics.add(rec(0, 150, site="seoul"))
    split = metrics.split_by_site(0, sec(1), leader_site="oregon", op=OpType.PUT)
    assert split["leader"]["count"] == 1
    assert split["followers"]["count"] == 1
    assert split["followers"]["max"] == 150.0


def test_split_filters_by_op():
    metrics = MetricsRecorder()
    metrics.add(rec(0, 50, op=OpType.GET))
    split = metrics.split_by_site(0, sec(1), leader_site="oregon", op=OpType.PUT)
    assert split["leader"]["count"] == 0


def test_local_read_fraction():
    metrics = MetricsRecorder()
    metrics.add(rec(0, 1, op=OpType.GET, local=True))
    metrics.add(rec(0, 1, op=OpType.GET, local=False))
    metrics.add(rec(0, 1, op=OpType.PUT))
    assert metrics.local_read_fraction(0, sec(1)) == 0.5


def test_local_read_fraction_no_reads():
    metrics = MetricsRecorder()
    assert metrics.local_read_fraction(0, sec(1)) == 0.0


def test_throughput_by_groups_records():
    metrics = MetricsRecorder()
    metrics.add(rec(100, 200, site="oregon"))
    metrics.add(rec(100, 300, site="oregon"))
    metrics.add(rec(100, 400, site="seoul"))
    by_server = metrics.throughput_by(0, sec(1), key=lambda r: r.server)
    assert by_server == {"r_oregon": 2.0, "r_seoul": 1.0}
    assert metrics.throughput_by(0, 0, key=lambda r: r.server) == {}


def test_merge_combines_groups():
    a, b = MetricsRecorder(), MetricsRecorder()
    a.add(rec(100, 300))
    a.add(rec(0, 10, ok=False))
    b.add(rec(100, 200, site="seoul"))
    merged = MetricsRecorder.merge([a, b])
    # all records present, globally sorted by completion time
    assert [r.end for r in merged.records] == [ms(200), ms(300)]
    assert merged.failures == 1
    assert merged.throughput_ops(0, sec(1)) == 2.0
    # sources are untouched
    assert len(a.records) == 1 and len(b.records) == 1
