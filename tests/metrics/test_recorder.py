"""Request record aggregation."""

from repro.metrics.recorder import MetricsRecorder, RequestRecord
from repro.protocols.types import OpType
from repro.sim.units import ms, sec


def rec(start_ms, end_ms, site="oregon", op=OpType.PUT, ok=True, local=False):
    return RequestRecord(client="c", site=site, server=f"r_{site}", op=op,
                         start=ms(start_ms), end=ms(end_ms), ok=ok,
                         local_read=local)


def test_failures_counted_not_recorded():
    metrics = MetricsRecorder()
    metrics.add(rec(0, 10, ok=False))
    assert metrics.failures == 1 and metrics.records == []


def test_window_filters_by_start_and_end():
    metrics = MetricsRecorder()
    metrics.add(rec(0, 10))      # starts before window
    metrics.add(rec(100, 150))   # inside
    metrics.add(rec(900, 1100))  # ends after window
    inside = metrics.window(ms(50), ms(1000))
    assert len(inside) == 1


def test_throughput():
    metrics = MetricsRecorder()
    for i in range(100):
        metrics.add(rec(100 + i, 101 + i))
    assert metrics.throughput_ops(ms(100), ms(1100)) == 100.0


def test_latency_summary():
    metrics = MetricsRecorder()
    metrics.add(rec(0, 50))
    metrics.add(rec(0, 100))
    summary = metrics.latency_summary_ms(0, sec(1))
    assert summary["count"] == 2
    assert summary["max"] == 100.0


def test_split_by_site():
    metrics = MetricsRecorder()
    metrics.add(rec(0, 50, site="oregon"))
    metrics.add(rec(0, 150, site="seoul"))
    split = metrics.split_by_site(0, sec(1), leader_site="oregon", op=OpType.PUT)
    assert split["leader"]["count"] == 1
    assert split["followers"]["count"] == 1
    assert split["followers"]["max"] == 150.0


def test_split_filters_by_op():
    metrics = MetricsRecorder()
    metrics.add(rec(0, 50, op=OpType.GET))
    split = metrics.split_by_site(0, sec(1), leader_site="oregon", op=OpType.PUT)
    assert split["leader"]["count"] == 0


def test_local_read_fraction():
    metrics = MetricsRecorder()
    metrics.add(rec(0, 1, op=OpType.GET, local=True))
    metrics.add(rec(0, 1, op=OpType.GET, local=False))
    metrics.add(rec(0, 1, op=OpType.PUT))
    assert metrics.local_read_fraction(0, sec(1)) == 0.5


def test_local_read_fraction_no_reads():
    metrics = MetricsRecorder()
    assert metrics.local_read_fraction(0, sec(1)) == 0.0


def test_throughput_by_groups_records():
    metrics = MetricsRecorder()
    metrics.add(rec(100, 200, site="oregon"))
    metrics.add(rec(100, 300, site="oregon"))
    metrics.add(rec(100, 400, site="seoul"))
    by_server = metrics.throughput_by(0, sec(1), key=lambda r: r.server)
    assert by_server == {"r_oregon": 2.0, "r_seoul": 1.0}
    assert metrics.throughput_by(0, 0, key=lambda r: r.server) == {}


def test_merge_combines_groups():
    a, b = MetricsRecorder(), MetricsRecorder()
    a.add(rec(100, 300))
    a.add(rec(0, 10, ok=False))
    b.add(rec(100, 200, site="seoul"))
    merged = MetricsRecorder.merge([a, b])
    # all records present, globally sorted by completion time
    assert [r.end for r in merged.records] == [ms(200), ms(300)]
    assert merged.failures == 1
    assert merged.throughput_ops(0, sec(1)) == 2.0
    # sources are untouched
    assert len(a.records) == 1 and len(b.records) == 1


# -- named counters (redirects, txn events, ...) ------------------------------


def test_incr_creates_and_accumulates():
    metrics = MetricsRecorder()
    assert metrics.counters == {}
    metrics.incr("redirects")
    metrics.incr("redirects")
    metrics.incr("txn_waits", by=3)
    assert metrics.counters == {"redirects": 2, "txn_waits": 3}


def test_incr_negative_and_zero_steps():
    metrics = MetricsRecorder()
    metrics.incr("drift", by=0)
    metrics.incr("drift", by=-2)
    assert metrics.counters == {"drift": -2}


def test_merge_sums_counters_across_groups():
    a, b, c = MetricsRecorder(), MetricsRecorder(), MetricsRecorder()
    a.incr("redirects", by=2)
    b.incr("redirects", by=3)
    b.incr("capped_redirects")
    merged = MetricsRecorder.merge([a, b, c])
    assert merged.counters == {"redirects": 5, "capped_redirects": 1}
    # sources untouched
    assert a.counters == {"redirects": 2}
    assert b.counters == {"redirects": 3, "capped_redirects": 1}
    assert c.counters == {}


def test_merge_with_no_counters_still_empty():
    merged = MetricsRecorder.merge([MetricsRecorder(), MetricsRecorder()])
    assert merged.counters == {}


def test_throughput_by_with_counters_untouched():
    """throughput_by ignores counters entirely (they are not records)."""
    metrics = MetricsRecorder()
    metrics.incr("redirects", by=9)
    metrics.add(rec(100, 200))
    assert metrics.throughput_by(0, sec(1), key=lambda r: r.op.value) == \
        {"put": 1.0}
    assert metrics.counters == {"redirects": 9}
