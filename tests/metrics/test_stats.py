"""Percentile math."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.stats import percentile, summarize


def test_percentile_basic():
    values = list(range(1, 101))
    assert percentile(values, 50) == 50
    assert percentile(values, 90) == 90
    assert percentile(values, 99) == 99
    assert percentile(values, 100) == 100


def test_percentile_zero_returns_min():
    assert percentile([5, 1, 9], 0) == 1


def test_percentile_single_value():
    assert percentile([7.0], 50) == 7.0
    assert percentile([7.0], 99) == 7.0


def test_percentile_empty_raises():
    with pytest.raises(ValueError):
        percentile([], 50)


def test_percentile_out_of_range():
    with pytest.raises(ValueError):
        percentile([1], 101)


def test_summarize():
    summary = summarize([1.0, 2.0, 3.0, 4.0])
    assert summary["count"] == 4
    assert summary["mean"] == 2.5
    assert summary["max"] == 4.0


def test_summarize_empty():
    summary = summarize([])
    assert summary["count"] == 0
    assert summary["p999"] == 0.0


def test_summarize_p999():
    """The extreme-tail percentile the obs figures report: nearest-rank,
    one real sample from the top 0.1% of the distribution."""
    values = [float(i) for i in range(1, 1235)]
    summary = summarize(values)
    assert summary["p999"] == 1233.0  # ceil(0.999 * 1234) = 1233
    assert summary["p99"] == 1222.0
    assert summary["p99"] <= summary["p999"] <= summary["max"]
    assert summary["count"] == 1234


@given(st.lists(st.floats(min_value=0, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=200),
       st.floats(min_value=0, max_value=100))
def test_percentile_within_range(values, pct):
    """Property: percentiles always lie within [min, max] and are monotone
    in pct."""
    result = percentile(values, pct)
    assert min(values) <= result <= max(values)
    if pct <= 50:
        assert result <= percentile(values, 90)


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=100))
def test_percentile_is_element(values):
    """Nearest-rank percentile returns an actual sample."""
    for pct in (1, 25, 50, 90, 99):
        assert percentile(values, pct) in values
