"""Host runtime: shared CPU queue, shared NIC, machine-granularity crashes."""

import pytest

from repro.sim.errors import NodeStateError
from repro.sim.events import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Host, Node, NodeCosts
from repro.sim.topology import HostPlan, symmetric_lan


class Recorder(Node):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = []

    def on_message(self, src, message):
        self.received.append((self.sim.now, src, message))


def build(n_sites=2, **net_kwargs):
    sim = Simulator()
    network = Network(sim, symmetric_lan(n_sites),
                      config=NetworkConfig(**net_kwargs))
    return sim, network


def test_private_host_by_default_matches_old_model():
    sim, network = build()
    a = Recorder("a", sim, network, site="s0", costs=NodeCosts(per_message=100))
    b = Recorder("b", sim, network, site="s0", costs=NodeCosts(per_message=100))
    assert a.host is not b.host
    assert a.host.name == "a" and b.host.name == "b"
    # Two different nodes handle concurrently: no shared queueing.
    network.send("a", "b", "m1")
    network.send("b", "a", "m2")
    sim.run()
    assert a.cpu_backlog_us() == 0
    assert len(a.received) == 1 and len(b.received) == 1


def test_shared_host_serializes_cpu_across_nodes():
    sim, network = build()
    host = Host("box", sim, site="s0")
    a = Recorder("a", sim, network, site="s0",
                 costs=NodeCosts(per_message=100, per_byte=0), host=host)
    b = Recorder("b", sim, network, site="s0",
                 costs=NodeCosts(per_message=100, per_byte=0), host=host)
    sender = Recorder("c", sim, network, site="s0",
                      costs=NodeCosts(per_message=0, per_byte=0))
    assert host.nodes == [a, b]
    # Deliver one message to each colocated node at the same instant: the
    # second must queue behind the first on the shared CPU.
    sim.schedule(0, a._receive, "c", "m-a")
    sim.schedule(0, b._receive, "c", "m-b")
    sim.run()
    (ta, _, _), = a.received
    (tb, _, _), = b.received
    assert {ta, tb} == {100, 200}
    assert host.cpu_busy_us == 200


def test_shared_host_shares_nic_egress():
    sim, network = build()
    host = Host("box", sim, site="s0")
    costs = NodeCosts(per_message=0, per_byte=0)
    a = Recorder("a", sim, network, site="s0", costs=costs, host=host)
    b = Recorder("b", sim, network, site="s0", costs=costs, host=host)
    Recorder("far", sim, network, site="s1", costs=costs)

    class Sized:
        def size_bytes(self):
            return 4096

    # Both colocated nodes transmit cross-site at t=0: the second message
    # serializes behind the first on the one shared NIC.
    network.send("a", "far", Sized())
    network.send("b", "far", Sized())
    assert network.egress_backlog_us("a") == network.egress_backlog_us("b")
    assert network.egress_backlog_us("box") > 0
    # Compare against two private NICs: each node would only queue its own.
    sim2, network2 = build()
    a2 = Recorder("a", sim2, network2, site="s0", costs=costs)
    Recorder("far", sim2, network2, site="s1", costs=costs)
    network2.send("a", "far", Sized())
    assert network.egress_backlog_us("a") == 2 * network2.egress_backlog_us("a")


def test_host_crash_takes_all_colocated_nodes_down_and_back():
    sim, network = build()
    host = Host("box", sim, site="s0")
    a = Recorder("a", sim, network, site="s0", host=host)
    b = Recorder("b", sim, network, site="s0", host=host)
    assert host.alive
    host.crash()
    assert not a.alive and not b.alive and not host.alive
    host.recover()
    assert a.alive and b.alive and host.alive
    # Idempotent at the node layer: a second host.crash only crashes
    # still-alive nodes.
    a.crash()
    host.crash()
    assert not b.alive
    with pytest.raises(NodeStateError):
        a.crash()


def test_recover_frees_cpu_only_when_no_live_cohabitant_queues():
    sim, network = build()
    host = Host("box", sim, site="s0")
    costs = NodeCosts(per_message=1000, per_byte=0)
    a = Recorder("a", sim, network, site="s0", costs=costs, host=host)
    b = Recorder("b", sim, network, site="s0", costs=costs, host=host)
    a._receive("x", "m")
    b._receive("x", "m")
    assert host.cpu_backlog_us() == 2000
    a.crash()
    a.recover()
    # b is alive with queued work: the backlog must survive a's restart.
    assert host.cpu_backlog_us() == 2000
    # Whole machine down, first node back up: the dropped queue frees the
    # CPU (nobody alive still owns that work).
    a.crash()
    b.crash()
    a.recover()
    assert host.cpu_backlog_us() == 0


def test_host_plan_layout():
    plan = HostPlan(("oregon", "ohio"), hosts_per_site=2)
    assert plan.host_for_group("oregon", 0) == "h0.oregon"
    assert plan.host_for_group("oregon", 1) == "h1.oregon"
    assert plan.host_for_group("ohio", 2) == "h0.ohio"
    assert len(plan.host_names()) == 4
    assert HostPlan.site_of_host("h1.oregon") == "oregon"
    with pytest.raises(ValueError):
        HostPlan(("oregon",), hosts_per_site=0)
