"""Process model: CPU queue, timers, crash/recover."""

import pytest

from repro.sim.errors import NodeStateError
from repro.sim.events import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Node, NodeCosts
from repro.sim.rng import SplitRng
from repro.sim.topology import symmetric_lan
from repro.sim.units import ms


class Recorder(Node):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.handled = []

    def on_message(self, src, message):
        self.handled.append((self.sim.now, message))


class Sized:
    def __init__(self, size=0, units=0.0):
        self._size, self._units = size, units

    def size_bytes(self):
        return self._size

    def command_count(self):
        return self._units


def build(costs=None):
    sim = Simulator()
    net = Network(sim, symmetric_lan(2, rtt_ms_value=0.0), rng=SplitRng(1))
    node = Recorder("s0", sim, net, costs=costs or NodeCosts(per_message=100, per_command=0, per_byte=0))
    peer = Recorder("s1", sim, net, costs=NodeCosts(per_message=0, per_command=0, per_byte=0))
    return sim, net, node, peer


def test_message_handling_costs_cpu():
    sim, net, node, peer = build()
    peer.send("s0", Sized())
    sim.run()
    assert node.handled[0][0] == 100  # arrival at 0 + 100us processing


def test_messages_queue_behind_each_other():
    sim, net, node, peer = build()
    for _ in range(3):
        peer.send("s0", Sized())
    sim.run()
    times = [t for t, _ in node.handled]
    assert times == [100, 200, 300]


def test_cost_model_components():
    costs = NodeCosts(per_message=10, per_command=100, per_byte=1.0)
    assert costs.cost(Sized(size=50, units=2.0)) == 10 + 200 + 50


def test_cost_model_fractional_units():
    costs = NodeCosts(per_message=0, per_command=100, per_byte=0)
    assert costs.cost(Sized(units=0.25)) == 25


def test_cpu_backlog_and_utilization():
    sim, net, node, peer = build()
    for _ in range(5):
        peer.send("s0", Sized())
    sim.run(until=0)
    sim.run(max_events=5)  # deliveries only
    assert node.cpu_backlog_us() > 0
    sim.run()
    assert node.utilization(500) == 1.0


def test_timer_fires():
    sim, net, node, peer = build()
    fired = []
    timer = node.timer("t")
    timer.arm(ms(5), lambda: fired.append(sim.now))
    sim.run()
    assert fired == [ms(5)]
    assert not timer.armed


def test_timer_cancel():
    sim, net, node, peer = build()
    fired = []
    timer = node.timer("t")
    timer.arm(ms(5), lambda: fired.append(1))
    timer.cancel()
    sim.run()
    assert fired == []


def test_timer_rearm_replaces():
    sim, net, node, peer = build()
    fired = []
    timer = node.timer("t")
    timer.arm(ms(5), lambda: fired.append("first"))
    timer.arm(ms(10), lambda: fired.append("second"))
    sim.run()
    assert fired == ["second"]


def test_timer_does_not_fire_after_crash():
    sim, net, node, peer = build()
    fired = []
    node.timer("t").arm(ms(5), lambda: fired.append(1))
    node.crash()
    sim.run()
    assert fired == []


def test_timer_from_previous_incarnation_ignored():
    sim, net, node, peer = build()
    fired = []
    node.timer("t").arm(ms(5), lambda: fired.append(1))
    node.crash()
    node.recover()
    sim.run()
    assert fired == []  # armed before the crash; incarnation changed


def test_crash_twice_raises():
    sim, net, node, peer = build()
    node.crash()
    with pytest.raises(NodeStateError):
        node.crash()


def test_recover_when_alive_raises():
    sim, net, node, peer = build()
    with pytest.raises(NodeStateError):
        node.recover()


def test_crashed_node_does_not_send():
    sim, net, node, peer = build()
    node.crash()
    node.send("s1", Sized())
    sim.run()
    assert peer.handled == []


def test_in_flight_work_dropped_on_crash():
    sim, net, node, peer = build()
    peer.send("s0", Sized())
    sim.run(max_events=1)  # delivered, handler queued at +100us
    node.crash()
    sim.run()
    assert node.handled == []


def test_stable_storage_survives_crash():
    sim, net, node, peer = build()
    node.stable["log"] = [1, 2, 3]
    node.crash()
    node.recover()
    assert node.stable["log"] == [1, 2, 3]


def test_after_helper():
    sim, net, node, peer = build()
    fired = []
    node.after(ms(1), lambda: fired.append(sim.now))
    sim.run()
    assert fired == [ms(1)]
