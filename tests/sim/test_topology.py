"""WAN topology model."""

import pytest

from repro.sim.topology import (
    EC2_REGIONS,
    ec2_five_regions,
    symmetric_lan,
    uniform_topology,
)
from repro.sim.units import ms


def test_ec2_has_five_regions():
    topo = ec2_five_regions()
    assert set(topo.sites) == set(EC2_REGIONS)
    assert len(topo.sites) == 5


def test_latency_symmetric():
    topo = ec2_five_regions()
    for a in topo.sites:
        for b in topo.sites:
            if a != b:
                assert topo.latency(a, b) == topo.latency(b, a)


def test_paper_latency_range():
    """The paper: 'latency across sites varies from 25ms to 292ms' (RTT)."""
    topo = ec2_five_regions()
    rtts = [topo.rtt_ms(a, b) for i, a in enumerate(topo.sites)
            for b in topo.sites[i + 1:]]
    assert min(rtts) == 25.0
    assert max(rtts) == 292.0


def test_oregon_has_tightest_majority():
    """Raft-Oregon is the paper's best leader placement."""
    topo = ec2_five_regions()
    oregon = topo.nearest_majority_rtt_ms("oregon")
    for site in topo.sites:
        assert oregon <= topo.nearest_majority_rtt_ms(site)


def test_seoul_is_worst_leader_site():
    topo = ec2_five_regions()
    seoul = topo.nearest_majority_rtt_ms("seoul")
    for site in topo.sites:
        assert seoul >= topo.nearest_majority_rtt_ms(site)


def test_local_latency():
    topo = ec2_five_regions()
    assert topo.latency("oregon", "oregon") == topo.local_us


def test_unknown_pair_raises():
    topo = symmetric_lan(3)
    with pytest.raises(KeyError):
        topo.latency("s0", "nope")


def test_uniform_topology():
    topo = uniform_topology(["a", "b", "c"], rtt_ms_value=10.0)
    assert topo.latency("a", "b") == ms(5)
    assert topo.rtt_ms("b", "c") == 10.0


def test_symmetric_lan_builder():
    topo = symmetric_lan(4, rtt_ms_value=0.5)
    assert len(topo.sites) == 4
    assert topo.jitter_fraction == 0.0


def test_farthest_rtt():
    topo = ec2_five_regions()
    assert topo.farthest_rtt_ms("ireland") == 292.0
    assert topo.farthest_rtt_ms("seoul") == 292.0
