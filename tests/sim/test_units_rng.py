"""Time units and split RNG."""

from repro.sim.rng import SplitRng
from repro.sim.units import ms, sec, to_ms, to_sec, us


def test_units_roundtrip():
    assert ms(1) == 1000
    assert sec(1) == 1_000_000
    assert us(7.4) == 7
    assert to_ms(1500) == 1.5
    assert to_sec(2_500_000) == 2.5


def test_units_fractional():
    assert ms(0.5) == 500
    assert sec(0.001) == 1000


def test_same_seed_same_stream():
    a = SplitRng(42).stream("x")
    b = SplitRng(42).stream("x")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_streams_independent():
    root = SplitRng(42)
    xs = [root.stream("x").random() for _ in range(3)]
    # Drawing from another stream must not perturb "x".
    root2 = SplitRng(42)
    root2.stream("y").random()
    xs2 = [root2.stream("x").random() for _ in range(3)]
    assert xs == xs2


def test_stream_memoized():
    root = SplitRng(1)
    assert root.stream("a") is root.stream("a")


def test_fork_derives_new_seed():
    root = SplitRng(1)
    child = root.fork("c")
    assert child.seed != root.seed
    assert child.stream("x").random() != root.stream("x").random()


def test_different_seeds_differ():
    assert SplitRng(1).stream("x").random() != SplitRng(2).stream("x").random()
