"""Network model: latency, FIFO, bandwidth, loss, partitions."""

import pytest

from repro.sim.errors import UnknownNodeError
from repro.sim.events import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Node, NodeCosts
from repro.sim.rng import SplitRng
from repro.sim.topology import symmetric_lan, uniform_topology
from repro.sim.units import ms


class Sink(Node):
    """Records (time, src, message)."""

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("costs", NodeCosts(per_message=0, per_command=0, per_byte=0))
        super().__init__(*args, **kwargs)
        self.received = []

    def on_message(self, src, message):
        self.received.append((self.sim.now, src, message))


class Payload:
    def __init__(self, size=64, tag=None):
        self._size = size
        self.tag = tag

    def size_bytes(self):
        return self._size


def build_pair(rtt_ms=10.0, **net_kwargs):
    sim = Simulator()
    topo = uniform_topology(["x", "y"], rtt_ms, jitter_fraction=0.0)
    net = Network(sim, topo, rng=SplitRng(3), config=NetworkConfig(**net_kwargs))
    a = Sink("x", sim, net)
    b = Sink("y", sim, net)
    return sim, net, a, b


def test_delivery_takes_one_way_latency():
    sim, net, a, b = build_pair(rtt_ms=10.0)
    a.send("y", Payload(size=0))
    sim.run()
    assert len(b.received) == 1
    # one-way = 5ms, plus zero serialization for 0 bytes
    assert b.received[0][0] == ms(5)


def test_bandwidth_serialization_delays_departure():
    sim, net, a, b = build_pair(rtt_ms=10.0, bandwidth_bytes_per_sec=1000.0)
    a.send("y", Payload(size=1000))  # 1 second of serialization
    sim.run()
    assert b.received[0][0] == 1_000_000 + ms(5)


def test_egress_queue_serializes_back_to_back_sends():
    sim, net, a, b = build_pair(rtt_ms=10.0, bandwidth_bytes_per_sec=1000.0)
    a.send("y", Payload(size=500, tag=1))  # 0.5 s
    a.send("y", Payload(size=500, tag=2))  # queued behind the first
    sim.run()
    times = [t for t, _, _ in b.received]
    assert times[0] == 500_000 + ms(5)
    assert times[1] == 1_000_000 + ms(5)


def test_egress_backlog_visible():
    sim, net, a, b = build_pair(rtt_ms=10.0, bandwidth_bytes_per_sec=1000.0)
    a.send("y", Payload(size=2000))
    assert net.egress_backlog_us("x") == 2_000_000


def test_fifo_preserves_order_despite_jitter():
    sim = Simulator()
    topo = uniform_topology(["x", "y"], 50.0, jitter_fraction=0.5)
    net = Network(sim, topo, rng=SplitRng(5), config=NetworkConfig(fifo=True))
    a = Sink("x", sim, net)
    b = Sink("y", sim, net)
    for i in range(50):
        a.send("y", Payload(size=0, tag=i))
    sim.run()
    tags = [m.tag for _, _, m in b.received]
    assert tags == list(range(50))


def test_non_fifo_can_reorder():
    sim = Simulator()
    topo = uniform_topology(["x", "y"], 50.0, jitter_fraction=0.9)
    net = Network(sim, topo, rng=SplitRng(5), config=NetworkConfig(fifo=False))
    a = Sink("x", sim, net)
    b = Sink("y", sim, net)
    for i in range(100):
        a.send("y", Payload(size=0, tag=i))
    sim.run()
    tags = [m.tag for _, _, m in b.received]
    assert tags != list(range(100))  # with 90% jitter some reorder happens


def test_loss_rate_drops_messages():
    sim = Simulator()
    topo = symmetric_lan(2)
    net = Network(sim, topo, rng=SplitRng(5), config=NetworkConfig(loss_rate=0.5))
    a = Sink("s0", sim, net)
    b = Sink("s1", sim, net)
    for _ in range(200):
        a.send("s1", Payload(size=0))
    sim.run()
    assert 40 < len(b.received) < 160
    assert net.messages_dropped == 200 - len(b.received)


def test_block_and_unblock():
    sim, net, a, b = build_pair()
    net.block("x", "y")
    a.send("y", Payload())
    b.send("x", Payload())
    sim.run()
    assert b.received == [] and a.received == []
    net.unblock("x", "y")
    a.send("y", Payload())
    sim.run()
    assert len(b.received) == 1


def test_partition_and_heal():
    sim = Simulator()
    topo = symmetric_lan(4)
    net = Network(sim, topo, rng=SplitRng(1))
    nodes = [Sink(f"s{i}", sim, net) for i in range(4)]
    net.partition(["s0", "s1"], ["s2", "s3"])
    nodes[0].send("s3", Payload())
    nodes[0].send("s1", Payload())
    sim.run()
    assert nodes[3].received == []
    assert len(nodes[1].received) == 1
    net.heal()
    nodes[0].send("s3", Payload())
    sim.run()
    assert len(nodes[3].received) == 1


def test_isolate():
    sim = Simulator()
    topo = symmetric_lan(3)
    net = Network(sim, topo, rng=SplitRng(1))
    nodes = [Sink(f"s{i}", sim, net) for i in range(3)]
    net.isolate("s0")
    nodes[0].send("s1", Payload())
    nodes[1].send("s0", Payload())
    nodes[1].send("s2", Payload())
    sim.run()
    assert nodes[1].received == []
    assert nodes[0].received == []
    assert len(nodes[2].received) == 1


def test_unknown_destination_raises():
    sim, net, a, b = build_pair()
    with pytest.raises(UnknownNodeError):
        a.send("ghost", Payload())


def test_crashed_node_drops_messages():
    sim, net, a, b = build_pair()
    b.crash()
    a.send("y", Payload())
    sim.run()
    assert b.received == []
    assert net.messages_dropped == 1


def test_default_size_estimate_for_plain_objects():
    sim, net, a, b = build_pair()
    a.send("y", "just a string")
    sim.run()
    assert len(b.received) == 1


def test_self_send_uses_local_latency():
    sim, net, a, b = build_pair()
    a.send("x", Payload())
    sim.run()
    assert a.received[0][0] == net.topology.local_us
