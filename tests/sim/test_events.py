"""Event queue / simulator core."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.errors import SchedulingError
from repro.sim.events import Simulator


def test_runs_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(30, fired.append, "c")
    sim.schedule(10, fired.append, "a")
    sim.schedule(20, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    sim = Simulator()
    fired = []
    for tag in "abcde":
        sim.schedule(5, fired.append, tag)
    sim.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(42, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [42]
    assert sim.now == 42


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.schedule(-1, lambda: None)


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    event = sim.schedule(10, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_cancelled_events_not_counted_pending():
    sim = Simulator()
    keep = sim.schedule(10, lambda: None)
    drop = sim.schedule(20, lambda: None)
    drop.cancel()
    assert sim.pending() == 1
    assert keep is not drop


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, "early")
    sim.schedule(100, fired.append, "late")
    sim.run(until=50)
    assert fired == ["early"]
    assert sim.now == 50  # clock advanced to the horizon
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_is_inclusive():
    sim = Simulator()
    fired = []
    sim.schedule(50, fired.append, "at")
    sim.run(until=50)
    assert fired == ["at"]


def test_max_events_bound():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(i + 1, fired.append, i)
    processed = sim.run(max_events=3)
    assert processed == 3
    assert fired == [0, 1, 2]


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(10, chain, n + 1)

    sim.schedule(0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 30


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule(10, lambda: sim.schedule_at(25, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [25]


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(i, lambda: None)
    sim.run()
    assert sim.events_processed == 5


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=50))
def test_monotonic_execution_order(delays):
    """Property: callbacks always observe non-decreasing simulated time."""
    sim = Simulator()
    times = []
    for delay in delays:
        sim.schedule(delay, lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)
    assert len(times) == len(delays)


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=2, max_size=20),
       st.integers(min_value=0, max_value=100))
def test_run_until_partition(delays, horizon):
    """Property: run(until=h) fires exactly the events with time <= h."""
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, fired.append, delay)
    sim.run(until=horizon)
    assert sorted(fired) == sorted(d for d in delays if d <= horizon)
