"""Trace log."""

from repro.sim.trace import TraceLog, TraceRecord


def test_disabled_records_nothing():
    log = TraceLog(enabled=False)
    log.record(1, "n", "send")
    assert len(log) == 0


def test_record_and_filter():
    log = TraceLog()
    log.record(1, "a", "send", dst="b")
    log.record(2, "b", "recv", src="a")
    log.record(3, "a", "crash")
    assert log.count(node="a") == 2
    assert log.count(kind="recv") == 1
    assert [r.time for r in log.filter(node="a")] == [1, 3]


def test_capacity_drops_overflow():
    log = TraceLog(capacity=2)
    for i in range(5):
        log.record(i, "n", "k")
    assert len(log) == 2
    assert log.dropped == 3


def test_default_mode_keeps_the_oldest():
    """At capacity the default log drops NEW records (the head of the run
    is what a startup/election investigation wants)."""
    log = TraceLog(capacity=2)
    for i in range(5):
        log.record(i, "n", "k")
    assert [r.time for r in log] == [0, 1]
    assert log.dropped == 3


def test_ring_mode_keeps_the_newest():
    """A ring log evicts the OLDEST record instead (a flight-recorder: the
    span collector wants the end of the run, not the start)."""
    log = TraceLog(capacity=2, ring=True)
    for i in range(5):
        log.record(i, "n", "k")
    assert [r.time for r in log] == [3, 4]
    assert log.dropped == 3


def test_ring_mode_disabled_still_records_nothing():
    log = TraceLog(enabled=False, capacity=2, ring=True)
    log.record(1, "n", "k")
    assert len(log) == 0 and log.dropped == 0


def test_clear():
    log = TraceLog()
    log.record(1, "a", "x")
    log.clear()
    assert len(log) == 0 and log.dropped == 0


def test_str_rendering():
    rec = TraceRecord(5, "node", "send", {"dst": "x"})
    assert "node" in str(rec) and "dst=x" in str(rec)


def test_iteration():
    log = TraceLog()
    log.record(1, "a", "x")
    log.record(2, "b", "y")
    assert [r.node for r in log] == ["a", "b"]
