"""Lazy timer re-arm: an extended deadline keeps the queued event.

The election-timeout pattern — re-armed on every received heartbeat —
must cost one queue event per timeout *window*, not one cancelled entry
per reset.  These tests pin that contract (and the semantics around it:
shortened deadlines still fire early, extended events sleep for the
remaining gap instead of firing)."""

from repro.sim.events import Simulator
from repro.sim.network import Network
from repro.sim.node import Node, NodeCosts
from repro.sim.rng import SplitRng
from repro.sim.topology import symmetric_lan
from repro.sim.units import ms


def build():
    sim = Simulator()
    net = Network(sim, symmetric_lan(2, rtt_ms_value=0.0), rng=SplitRng(1))
    node = Node("s0", sim, net,
                costs=NodeCosts(per_message=0, per_command=0, per_byte=0))
    return sim, node


def test_extension_keeps_queued_event():
    sim, node = build()
    fired = []
    timer = node.timer("election")
    timer.arm(ms(10), lambda: fired.append(sim.now))
    queued = timer._event
    # Push the deadline out repeatedly: the in-flight event is kept.
    for _ in range(50):
        timer.arm(ms(10), lambda: fired.append(sim.now))
        assert timer._event is queued
    sim.run()
    assert fired == [ms(10)]


def test_reset_per_tick_costs_one_event_per_window():
    sim, node = build()
    fired = []
    timer = node.timer("election")
    timer.arm(ms(10), lambda: fired.append(sim.now))

    resets = 100

    def tick(n):
        if n:
            timer.arm(ms(10), lambda: fired.append(sim.now))
            sim.schedule(ms(1), tick, n - 1)

    sim.schedule(ms(1), tick, resets)
    sim.run()
    # The timer fires once, 10ms after the last reset.
    assert fired == [ms(1) * resets + ms(10)]
    # Lazy re-arm: the timer consumed ~one queue event per elapsed 10ms
    # window (the early wake-ups that re-slept), nowhere near one per
    # reset.  Total events = 101 ticks + timer wake-ups.
    wakeups = sim.events_processed - (resets + 1)
    assert wakeups <= resets // 5 + 2


def test_shortened_deadline_fires_early():
    sim, node = build()
    fired = []
    timer = node.timer("t")
    timer.arm(ms(10), lambda: fired.append(sim.now))
    timer.arm(ms(2), lambda: fired.append(sim.now))
    sim.run()
    assert fired == [ms(2)]


def test_extended_event_wakes_early_and_resleeps():
    sim, node = build()
    fired = []
    timer = node.timer("t")
    timer.arm(ms(5), lambda: fired.append(("old", sim.now)))
    # Extend before the original wake-up: the old event stays queued, wakes
    # at 5ms, sees the pushed-out deadline, and re-sleeps for the gap.
    timer.arm(ms(20), lambda: fired.append(("new", sim.now)))
    sim.run()
    assert fired == [("new", ms(20))]


def test_cancel_after_extension_suppresses_wakeup_fire():
    sim, node = build()
    fired = []
    timer = node.timer("t")
    timer.arm(ms(5), lambda: fired.append(sim.now))
    timer.arm(ms(20), lambda: fired.append(sim.now))
    timer.cancel()
    assert not timer.armed
    sim.run()
    assert fired == []
