"""Timer-wheel internals: far-bucket cascade, same-tick batching,
cancelled-entry compaction, and the run-loop GC pause."""

import gc

import pytest

from repro.sim.events import COMPACT_THRESHOLD, Simulator, WHEEL_BITS

HORIZON = 1 << WHEEL_BITS


def test_far_event_lands_in_wheel_then_fires():
    sim = Simulator()
    fired = []
    far = HORIZON * 3 + 17
    sim.schedule(far, fired.append, "far")
    assert not sim._at, "far event must not enter the near store"
    assert sum(len(v) for v in sim._wheel.values()) == 1
    sim.run()
    assert fired == ["far"]
    assert sim.now == far


def test_order_preserved_across_near_and_far():
    sim = Simulator()
    fired = []
    sim.schedule(HORIZON * 2 + 5, fired.append, "c")
    sim.schedule(3, fired.append, "a")
    sim.schedule(HORIZON * 5, fired.append, "d")
    sim.schedule(HORIZON - 1, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c", "d"]


def test_cascade_preserves_insertion_order_within_bucket():
    sim = Simulator()
    fired = []
    when = HORIZON + 100
    for tag in ("x", "y", "z"):
        sim.schedule(when, fired.append, tag)
    sim.run()
    assert fired == ["x", "y", "z"]


def test_cancelled_far_event_dropped_at_cascade():
    sim = Simulator()
    fired = []
    doomed = sim.schedule(HORIZON + 50, fired.append, "doomed")
    sim.schedule(HORIZON + 60, fired.append, "kept")
    doomed.cancel()
    sim.run()
    assert fired == ["kept"]
    assert sim.events_processed == 1
    # The cascade dropped the tombstone without dispatch bookkeeping debt.
    assert sim._cancelled == 0
    assert sim.pending() == 0


def test_same_tick_appends_join_the_running_batch():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(0, fired.append, "appended")

    sim.schedule(10, first)
    sim.schedule(10, fired.append, "second")
    sim.run()
    # The delay-0 event scheduled DURING the batch runs in the same batch,
    # after everything queued ahead of it (seq order).
    assert fired == ["first", "second", "appended"]


def test_compaction_prunes_cancelled_backlog():
    sim = Simulator()
    keep = []
    events = [sim.schedule(HORIZON + i, keep.append, i)
              for i in range(COMPACT_THRESHOLD + 2)]
    survivor = sim.schedule(5, keep.append, "live")
    for event in events:
        event.cancel()
    # The cancel backlog crossed COMPACT_THRESHOLD while outnumbering the
    # live events, so the queue was compacted in place: at most the
    # post-compaction stragglers remain, not the thousand-entry backlog.
    assert sim._cancelled <= 1
    assert sum(len(v) for v in sim._wheel.values()) <= 1
    assert sim.pending() == 1
    sim.run()
    assert keep == ["live"]
    assert not survivor.cancelled


def test_gc_paused_during_run_and_restored():
    sim = Simulator()
    seen = []
    sim.schedule(1, lambda: seen.append(gc.isenabled()))
    assert gc.isenabled()
    sim.run()
    assert seen == [False]
    assert gc.isenabled()


def test_gc_pause_opt_out():
    sim = Simulator()
    sim.gc_pause = False
    seen = []
    sim.schedule(1, lambda: seen.append(gc.isenabled()))
    sim.run()
    assert seen == [True]


def test_gc_already_disabled_stays_disabled():
    sim = Simulator()
    sim.schedule(1, lambda: None)
    gc.disable()
    try:
        sim.run()
        assert not gc.isenabled()
    finally:
        gc.enable()


def test_gc_restored_when_callback_raises():
    sim = Simulator()

    def boom():
        raise RuntimeError("handler failure")

    sim.schedule(1, boom)
    with pytest.raises(RuntimeError):
        sim.run()
    assert gc.isenabled()


def test_run_until_with_only_far_events_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(HORIZON * 4, fired.append, "late")
    sim.run(until=100)
    assert sim.now == 100
    assert fired == []
    sim.run(until=HORIZON * 10)
    assert fired == ["late"]


def test_identical_schedules_produce_identical_order():
    def drive(sim, fired):
        events = {}
        for i in range(200):
            delay = (i * 37) % (HORIZON * 3)
            events[i] = sim.schedule(delay, fired.append, i)
        for i in range(0, 200, 3):
            events[i].cancel()
        sim.run()

    fired_a, fired_b = [], []
    drive(Simulator(), fired_a)
    drive(Simulator(), fired_b)
    assert fired_a == fired_b
