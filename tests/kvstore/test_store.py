"""KV store state machine."""

from hypothesis import given, strategies as st

from repro.kvstore.store import KVStore
from repro.protocols.types import Command, OpType


def put(key, value, client="c", seq=1, ):
    return Command(op=OpType.PUT, key=key, value=value, client_id=client, seq=seq)


def get(key, client="c", seq=1):
    return Command(op=OpType.GET, key=key, client_id=client, seq=seq)


def test_put_then_get():
    store = KVStore()
    store.apply(put("k", "v", seq=1))
    assert store.apply(get("k", seq=2)).value == "v"


def test_get_missing_returns_none():
    store = KVStore()
    assert store.apply(get("k")).value is None


def test_duplicate_seq_not_reapplied():
    store = KVStore()
    store.apply(put("k", "v1", seq=1))
    store.apply(put("k", "v2", seq=2))
    result = store.apply(put("k", "v1", seq=1))  # replay of an old write
    assert store.read_local("k") == "v2"
    assert result.ok


def test_duplicate_returns_original_result():
    store = KVStore()
    store.apply(put("k", "v", seq=1))
    first = store.apply(get("k", seq=2))
    store.apply(put("k", "w", client="other", seq=1))
    replay = store.apply(get("k", seq=2))
    assert replay.value == first.value == "v"


def test_version_counts_writes():
    store = KVStore()
    assert store.version("k") == 0
    store.apply(put("k", "a", seq=1))
    store.apply(put("k", "b", seq=2))
    assert store.version("k") == 2


def test_nop_applies_to_nothing():
    from repro.protocols.types import NOP
    store = KVStore()
    assert store.apply(NOP).ok
    assert len(store) == 0
    assert store.applied_count == 0


def test_clients_tracked_independently():
    store = KVStore()
    store.apply(put("k", "a", client="c1", seq=5))
    store.apply(put("k", "b", client="c2", seq=1))
    assert store.read_local("k") == "b"
    assert store.version("k") == 2


def test_snapshot_is_copy():
    store = KVStore()
    store.apply(put("k", "v", seq=1))
    snap = store.snapshot()
    snap["k"] = "tampered"
    assert store.read_local("k") == "v"


@given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                          st.text(min_size=1, max_size=3)), max_size=30))
def test_store_matches_model_dict(ops):
    """Property: with unique seqs, the store behaves like a plain dict."""
    store = KVStore()
    model = {}
    for seq, (key, value) in enumerate(ops, start=1):
        store.apply(put(key, value, seq=seq))
        model[key] = value
    assert store.snapshot() == model


@given(st.lists(st.integers(min_value=1, max_value=10), min_size=1, max_size=30))
def test_replays_idempotent(seqs):
    """Property: applying any sequence twice equals applying it once."""
    once = KVStore()
    twice = KVStore()
    for seq in seqs:
        once.apply(put("k", f"v{seq}", seq=seq))
    for seq in seqs + seqs:
        twice.apply(put("k", f"v{seq}", seq=seq))
    assert once.snapshot() == twice.snapshot()
    assert once.version("k") == twice.version("k")
