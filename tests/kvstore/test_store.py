"""KV store state machine."""

import json

from hypothesis import given, strategies as st

from repro.kvstore.store import KVStore
from repro.protocols.types import Command, OpType
from repro.shard.partition import HASH_SPACE, key_point


def put(key, value, client="c", seq=1, ):
    return Command(op=OpType.PUT, key=key, value=value, client_id=client, seq=seq)


def get(key, client="c", seq=1):
    return Command(op=OpType.GET, key=key, client_id=client, seq=seq)


def test_put_then_get():
    store = KVStore()
    store.apply(put("k", "v", seq=1))
    assert store.apply(get("k", seq=2)).value == "v"


def test_get_missing_returns_none():
    store = KVStore()
    assert store.apply(get("k")).value is None


def test_duplicate_seq_not_reapplied():
    store = KVStore()
    store.apply(put("k", "v1", seq=1))
    store.apply(put("k", "v2", seq=2))
    result = store.apply(put("k", "v1", seq=1))  # replay of an old write
    assert store.read_local("k") == "v2"
    assert result.ok


def test_duplicate_returns_original_result():
    store = KVStore()
    store.apply(put("k", "v", seq=1))
    first = store.apply(get("k", seq=2))
    store.apply(put("k", "w", client="other", seq=1))
    replay = store.apply(get("k", seq=2))
    assert replay.value == first.value == "v"


def test_version_counts_writes():
    store = KVStore()
    assert store.version("k") == 0
    store.apply(put("k", "a", seq=1))
    store.apply(put("k", "b", seq=2))
    assert store.version("k") == 2


def test_nop_applies_to_nothing():
    from repro.protocols.types import NOP
    store = KVStore()
    assert store.apply(NOP).ok
    assert len(store) == 0
    assert store.applied_count == 0


def test_clients_tracked_independently():
    store = KVStore()
    store.apply(put("k", "a", client="c1", seq=5))
    store.apply(put("k", "b", client="c2", seq=1))
    assert store.read_local("k") == "b"
    assert store.version("k") == 2


def test_snapshot_is_copy():
    store = KVStore()
    store.apply(put("k", "v", seq=1))
    snap = store.snapshot()
    snap["k"] = "tampered"
    assert store.read_local("k") == "v"


# -- at-most-once vs ownership (the reshard-critical ordering) ---------------


def test_duplicate_after_ownership_loss_returns_cached_result():
    """Regression: the (client, seq) dedup check must run BEFORE the
    ownership filter.  A retried command whose original already applied,
    but whose key has since migrated away, must return the cached result —
    the pre-fix order returned ok=False, counted a filter hit, and made
    the client re-route and double-execute on the new owner."""
    store = KVStore()
    first = store.apply(put("k", "v", seq=1))
    assert first.ok
    store.set_key_filter(lambda key: False)  # the key's range migrated away
    replay = store.apply(put("k", "v", seq=1))
    assert replay.ok
    assert not replay.wrong_shard
    assert store.filtered_count == 0
    assert store.applied_count == 1  # not re-executed


def test_unowned_command_rejected_with_wrong_shard_marker():
    store = KVStore(key_filter=lambda key: False)
    result = store.apply(put("k", "v", seq=1))
    assert not result.ok
    assert result.wrong_shard
    assert store.filtered_count == 1
    # Not recorded for dedup: once this store imports the range (or the
    # client re-routes), the retry must actually apply.
    assert store.apply(get("k", seq=1)).wrong_shard


# -- range export / import (live resharding) ---------------------------------


def migrate_in(payload, seq, client="__reshard__"):
    value = json.dumps(payload)
    return Command(op=OpType.MIGRATE_IN, key="reshard:in", value=value,
                   client_id=client, seq=seq, value_size=len(value))


def test_export_import_moves_records_and_dedup_state():
    donor = KVStore()
    donor.apply(put("k", "v", client="c", seq=7))
    point = key_point("k")
    export = donor.export_range(point, point + 1)
    assert donor.read_local("k") is None
    assert export["table"] == {"k": "v"}
    assert export["versions"] == {"k": 1}
    assert "c" in export["sessions"]

    recipient = KVStore()
    recipient.import_range(export)
    assert recipient.read_local("k") == "v"
    assert recipient.version("k") == 1
    # The dedup state travelled: the retried original is answered from
    # cache, not re-executed.
    replay = recipient.apply(put("k", "v", client="c", seq=7))
    assert replay.ok
    assert recipient.version("k") == 1


def test_export_leaves_unrelated_state():
    store = KVStore()
    store.apply(put("k", "v", client="c1", seq=1))
    store.apply(put("q", "w", client="c2", seq=1))
    point = key_point("k")
    store.export_range(point, point + 1)
    assert store.read_local("q") == "w"
    # c2's dedup entry stayed (its last key did not move)
    assert store.apply(put("q", "x", client="c2", seq=1)).ok
    assert store.version("q") == 1


def test_import_merges_windows_without_regressing():
    recipient = KVStore()
    recipient.apply(put("k2", "x", client="c", seq=10))
    # A legacy single-slot session [seq, key, ok, value] imports as a
    # one-entry window with the floor just below it.
    stale = {"table": {}, "versions": {},
             "sessions": {"c": [3, "k", True, None]}}
    recipient.import_range(stale)
    # The imported slot answers its own seq from cache...
    assert recipient.apply(put("k", "y", client="c", seq=3)).ok
    assert recipient.version("k") == 0
    # ...seqs at or below the imported floor are acked duplicates...
    assert recipient.apply(put("k", "z", client="c", seq=2)).ok
    assert recipient.version("k") == 0
    # ...and the store's own newer slot survived the merge.
    assert recipient.apply(put("k2", "w", client="c", seq=10)).ok
    assert recipient.read_local("k2") == "x"


def test_import_duplicate_is_idempotent():
    donor = KVStore()
    donor.apply(put("k", "v", client="c", seq=7))
    export = donor.export_range(0, HASH_SPACE)
    recipient = KVStore()
    recipient.import_range(export)
    recipient.import_range(export)  # a retried MIGRATE_IN delivers twice
    assert recipient.apply(put("k", "v", client="c", seq=7)).ok
    assert recipient.version("k") == 1  # original not re-executed


def test_migrate_commands_through_apply_are_deduplicated():
    donor = KVStore()
    donor.apply(put("k", "v", client="c", seq=1))
    point = key_point("k")
    value = json.dumps({"lo": point, "hi": point + 1, "epoch": 1,
                        "num_shards": 2})
    out = Command(op=OpType.MIGRATE_OUT, key="reshard:x", value=value,
                  client_id="__reshard__", seq=1)
    first = donor.apply(out)
    assert first.ok and json.loads(first.value)["table"] == {"k": "v"}
    # A retried MIGRATE_OUT (lost reply) returns the SAME snapshot from the
    # dedup cache instead of re-exporting a now-empty range.
    retry = donor.apply(out)
    assert retry.value == first.value

    recipient = KVStore()
    payload = json.loads(first.value)
    result = recipient.apply(migrate_in(payload, seq=2))
    assert result.ok
    assert recipient.read_local("k") == "v"
    # Duplicate import: idempotent via dedup.
    assert recipient.apply(migrate_in(payload, seq=2)).ok
    assert recipient.version("k") == 1


@given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                          st.text(min_size=1, max_size=3)), max_size=30))
def test_store_matches_model_dict(ops):
    """Property: with unique seqs, the store behaves like a plain dict."""
    store = KVStore()
    model = {}
    for seq, (key, value) in enumerate(ops, start=1):
        store.apply(put(key, value, seq=seq))
        model[key] = value
    assert store.snapshot() == model


@given(st.lists(st.integers(min_value=1, max_value=10), min_size=1, max_size=30))
def test_replays_idempotent(seqs):
    """Property: applying any sequence twice equals applying it once."""
    once = KVStore()
    twice = KVStore()
    for seq in seqs:
        once.apply(put("k", f"v{seq}", seq=seq))
    for seq in seqs + seqs:
        twice.apply(put("k", f"v{seq}", seq=seq))
    assert once.snapshot() == twice.snapshot()
    assert once.version("k") == twice.version("k")


# -- 2PC participant machinery (repro.shard.txn) ------------------------------


def prepare(handle, ops, ts=100, seq=1, coord="co", inc=0,
            participants=(0, 1), home=0):
    value = json.dumps({"handle": handle, "txn": handle.split("#")[0],
                        "coord": coord, "inc": inc, "ts": ts,
                        "ops": [list(op) for op in ops],
                        "participants": list(participants), "home": home})
    return Command(op=OpType.TXN_PREPARE, key=f"txn:{handle}", value=value,
                   client_id=f"__txn__:{handle}", seq=seq)


def finish(handle, op, seq):
    value = json.dumps({"handle": handle})
    return Command(op=op, key=f"txn:{handle}", value=value,
                   client_id=f"__txn__:{handle}", seq=seq)


def vote_of(result):
    return json.loads(result.value)["vote"]


def test_prepare_locks_stages_reads_and_votes_yes():
    store = KVStore()
    store.apply(put("a", "old", seq=1))
    result = store.apply(prepare("t:1#0.1",
                                 [("put", "a", "new"), ("get", "b", None)]))
    payload = json.loads(result.value)
    assert payload["vote"] == "yes"
    # reads happen at the serialization point, writes stay staged
    assert payload["reads"] == {"b": None}
    assert store.read_local("a") == "old"
    assert store.locked_keys() == {"a": "t:1#0.1", "b": "t:1#0.1"}


def test_commit_installs_staged_writes_and_releases_locks():
    store = KVStore()
    store.apply(prepare("t:1#0.1", [("put", "a", "v")]))
    store.apply(finish("t:1#0.1", OpType.TXN_COMMIT, seq=2))
    assert store.read_local("a") == "v"
    assert store.version("a") == 1
    assert store.locked_keys() == {}
    # idempotent (dedup-suppressed duplicate and fresh-seq duplicate alike)
    store.apply(finish("t:1#0.1", OpType.TXN_COMMIT, seq=3))
    assert store.version("a") == 1


def test_abort_drops_staged_writes_and_releases_locks():
    store = KVStore()
    store.apply(prepare("t:1#0.1", [("put", "a", "v")]))
    store.apply(finish("t:1#0.1", OpType.TXN_ABORT, seq=2))
    assert store.read_local("a") is None
    assert store.version("a") == 0
    assert store.locked_keys() == {}


def test_wait_die_older_waits_younger_dies():
    store = KVStore()
    store.apply(prepare("t:1#0.1", [("put", "a", "v1")], ts=100))
    # younger (larger ts) requester dies
    young = store.apply(prepare("t:2#0.1", [("put", "a", "v2")], ts=200, seq=1))
    assert vote_of(young) == "no"
    # older (smaller ts) requester waits
    old = store.apply(prepare("t:3#0.1", [("put", "a", "v3")], ts=50, seq=1))
    assert vote_of(old) == "wait"
    # neither left any lock residue for itself
    assert store.locked_keys() == {"a": "t:1#0.1"}
    # after the holder commits, the retried prepare (fresh seq) is granted
    store.apply(finish("t:1#0.1", OpType.TXN_COMMIT, seq=2))
    retry = store.apply(prepare("t:3#0.1", [("put", "a", "v3")], ts=50, seq=2))
    assert vote_of(retry) == "yes"


def test_re_prepare_of_granted_attempt_revotes_yes():
    store = KVStore()
    store.apply(put("b", "seen", seq=1))
    first = store.apply(prepare("t:1#0.1", [("get", "b", None)], seq=1))
    again = store.apply(prepare("t:1#0.1", [("get", "b", None)], seq=2))
    assert vote_of(first) == vote_of(again) == "yes"
    assert json.loads(again.value)["reads"] == {"b": "seen"}


def test_fenced_incarnation_prepare_refused():
    store = KVStore()
    recover = Command(op=OpType.TXN_RECOVER, key="txnrec",
                      value=json.dumps({"coord": "co", "inc": 2}),
                      client_id="__txnrec__:co:2", seq=1)
    store.apply(recover)
    stale = store.apply(prepare("t:1#0.1", [("put", "a", "v")], inc=0))
    assert vote_of(stale) == "no"
    assert store.locked_keys() == {}
    # the new incarnation's prepares pass the fence
    fresh = store.apply(prepare("t:1#2.1", [("put", "a", "v")], inc=2, seq=2))
    assert vote_of(fresh) == "yes"


def test_decide_first_recorded_wins():
    store = KVStore()

    def decide(outcome, seq):
        value = json.dumps({"handle": "t:1#0.1", "txn": "t:1", "coord": "co",
                            "participants": [0, 1], "outcome": outcome,
                            "reads": {}})
        return Command(op=OpType.TXN_DECIDE, key="txn:t:1#0.1", value=value,
                       client_id=f"__txnd__:{seq}", seq=1)

    first = store.apply(decide("commit", 1))
    second = store.apply(decide("abort", 2))
    assert json.loads(first.value)["outcome"] == "commit"
    # the losing decision is answered with the winner, not recorded
    assert json.loads(second.value)["outcome"] == "commit"


def test_recover_reports_prepared_and_decisions_for_coordinator():
    store = KVStore()
    store.apply(prepare("t:1#0.1", [("put", "a", "v")], coord="co", seq=1))
    store.apply(prepare("u:9#0.4", [("put", "b", "w")], coord="other", seq=1))
    recover = Command(op=OpType.TXN_RECOVER, key="txnrec",
                      value=json.dumps({"coord": "co", "inc": 2}),
                      client_id="__txnrec__:co:2", seq=1)
    report = json.loads(store.apply(recover).value)
    assert [meta["handle"] for meta in report["prepared"]] == ["t:1#0.1"]
    assert report["decisions"] == []


def test_plain_ops_conflict_against_prepared_locks_without_dedup():
    store = KVStore()
    store.apply(prepare("t:1#0.1", [("put", "a", "staged")]))
    blocked = store.apply(put("a", "plain", client="c", seq=7))
    assert not blocked.ok and blocked.conflict
    blocked_read = store.apply(get("a", client="r", seq=3))
    assert not blocked_read.ok and blocked_read.conflict
    # the rejection did NOT consume the dedup slot: after the lock clears
    # the SAME sequence number applies for real
    store.apply(finish("t:1#0.1", OpType.TXN_ABORT, seq=2))
    retry = store.apply(put("a", "plain", client="c", seq=7))
    assert retry.ok
    assert store.read_local("a") == "plain"


def test_single_shard_txn_applies_atomically_and_respects_locks():
    store = KVStore()
    txn = Command(op=OpType.TXN, key="a",
                  value=json.dumps({"ops": [["put", "a", "v1"],
                                            ["get", "b", None]]}),
                  client_id="c", seq=1)
    result = store.apply(txn)
    assert result.ok
    assert json.loads(result.value)["reads"] == {"b": None}
    assert store.read_local("a") == "v1"
    # a lock on ANY touched key rejects the whole txn without dedup
    store.apply(prepare("t:1#0.1", [("put", "b", "x")], seq=1))
    txn2 = Command(op=OpType.TXN, key="a",
                   value=json.dumps({"ops": [["put", "a", "v2"],
                                             ["put", "b", "v3"]]}),
                   client_id="c", seq=2)
    blocked = store.apply(txn2)
    assert not blocked.ok and blocked.conflict
    assert store.read_local("a") == "v1"  # nothing partial
    store.apply(finish("t:1#0.1", OpType.TXN_ABORT, seq=2))
    assert store.apply(txn2).ok
    assert (store.read_local("a"), store.read_local("b")) == ("v2", "v3")


def test_write_order_records_install_order():
    store = KVStore()
    store.apply(put("k", "v1", seq=1))
    store.apply(prepare("t:1#0.1", [("put", "k", "v2")], seq=1))
    store.apply(finish("t:1#0.1", OpType.TXN_COMMIT, seq=2))
    assert store.write_order("k") == ["v1", "v2"]
    assert store.write_order("missing") == []
