"""Property tests for the windowed at-most-once dedup (`DedupSession`).

The three invariants the pipelined session API rests on:

* a retry of ANY sequence number still inside the window returns the
  cached result without re-executing;
* low-water-mark eviction never drops a slot whose seq can still be
  retried — only client-acked seqs are ever stamped into
  `Command.acked_low_water`, so an un-acked retry always finds its slot;
* the window state survives a MIGRATE_OUT/IN round-trip intact (including
  the JSON wire format the migration commands use).
"""

import json

from hypothesis import given, settings, strategies as st

from repro.kvstore.store import DedupSession, KVStore
from repro.protocols.types import Command, OpType
from repro.shard.partition import HASH_SPACE, key_point


def put(key, value, seq, client="c", lwm=-1):
    return Command(op=OpType.PUT, key=key, value=value, client_id=client,
                   seq=seq, acked_low_water=lwm)


# A schedule is a list of (ack_order_permutation_seed, retry_choices); we
# model a depth-`depth` pipeline client driving a store directly.


@settings(max_examples=60)
@given(st.integers(min_value=1, max_value=8),        # pipeline depth
       st.integers(min_value=5, max_value=40),       # operations
       st.randoms(use_true_random=False))
def test_window_retries_cached_and_each_seq_executes_once(depth, n_ops, rng):
    """Drive a random pipelined schedule: issue up to `depth` outstanding
    seqs, ack them in random order, retry random outstanding (un-acked)
    seqs at random points.  Every seq must execute exactly once and every
    retry must see the original result."""
    store = KVStore()
    outstanding = []      # issued, not acked (client's window)
    acked = set()
    next_seq = 1
    floor = 0             # contiguous acked floor (what the client stamps)
    first_results = {}

    def advance_floor():
        nonlocal floor
        while floor + 1 in acked:
            floor += 1
            acked.discard(floor)

    while next_seq <= n_ops or outstanding:
        choices = []
        if next_seq <= n_ops and len(outstanding) < depth:
            choices.append("issue")
        if outstanding:
            choices.extend(["ack", "retry"])
        action = rng.choice(choices)
        if action == "issue":
            seq = next_seq
            next_seq += 1
            result = store.apply(put(f"k{seq % 5}", f"v{seq}", seq, lwm=floor))
            assert result.ok
            first_results[seq] = result
            outstanding.append(seq)
        elif action == "retry":
            seq = rng.choice(outstanding)
            replay = store.apply(put(f"k{seq % 5}", f"v{seq}", seq, lwm=floor))
            assert replay.ok
            assert replay is first_results[seq] or replay == first_results[seq]
        else:  # ack (in ANY order — replies complete out of order)
            seq = rng.choice(outstanding)
            outstanding.remove(seq)
            acked.add(seq)
            advance_floor()
    # exactly one execution per seq: version count == distinct writes per key
    assert store.applied_count == n_ops
    for key in {f"k{seq % 5}" for seq in range(1, n_ops + 1)}:
        expected = sum(1 for seq in range(1, n_ops + 1) if f"k{seq % 5}" == key)
        assert store.version(key) == expected


@settings(max_examples=60)
@given(st.integers(min_value=1, max_value=8),
       st.integers(min_value=5, max_value=40),
       st.randoms(use_true_random=False))
def test_eviction_never_drops_unacked_seq(depth, n_ops, rng):
    """The eviction safety half: no matter how far the newest seq runs
    ahead, a slot stays resident until the CLIENT acks it — a straggler
    (oldest un-acked seq with a retry still in flight) survives arbitrary
    progress by younger seqs."""
    store = KVStore()
    # seq 1 never acked; the client keeps completing younger seqs.
    straggler = store.apply(put("straggler", "v1", 1))
    floor = 0
    acked = set()
    for seq in range(2, n_ops + 2):
        store.apply(put(f"k{seq}", f"v{seq}", seq, lwm=floor))
        acked.add(seq)     # acked promptly -> floor stays below seq 1? no:
        # floor only advances over CONTIGUOUS acks, and seq 1 never acks,
        # so the stamped floor stays 0 forever.
        while floor + 1 in acked:
            floor += 1
    replay = store.apply(put("straggler", "v1", 1, lwm=floor))
    assert replay.ok
    assert store.version("straggler") == 1  # never re-executed
    session = store._sessions["c"]
    assert 1 in session.entries  # the slot is still resident


def migrate_roundtrip(store, lo, hi):
    """Export a range through the MIGRATE_OUT command path (JSON wire
    format) and import it into a fresh store via MIGRATE_IN."""
    value = json.dumps({"lo": lo, "hi": hi})
    out = store.apply(Command(op=OpType.MIGRATE_OUT, key="reshard:x",
                              value=value, client_id="__reshard__", seq=1))
    assert out.ok
    payload = json.loads(out.value)
    recipient = KVStore()
    in_value = json.dumps(payload)
    assert recipient.apply(Command(op=OpType.MIGRATE_IN, key="reshard:in",
                                   value=in_value, client_id="__reshard__",
                                   seq=2, value_size=len(in_value))).ok
    return recipient


@settings(max_examples=60)
@given(st.lists(st.tuples(st.sampled_from(["a", "b", "c", "d"]),
                          st.integers(min_value=0, max_value=3)),
                min_size=1, max_size=25),
       st.integers(min_value=0, max_value=HASH_SPACE - 1))
def test_window_survives_migrate_roundtrip(ops, split):
    """Windowed dedup state survives MIGRATE_OUT/IN: after moving a range,
    a retry of any applied seq — whichever side its key landed on — is
    answered from cache, and no write re-executes."""
    donor = KVStore()
    commands = []
    for seq, (key, client_id) in enumerate(ops, start=1):
        command = put(key, f"v{client_id}:{seq}", seq, client=f"c{client_id}")
        donor.apply(command)
        commands.append(command)
    before_versions = {key: donor.version(key) for key, _ in ops}
    recipient = migrate_roundtrip(donor, 0, split)

    for command in commands:
        side = recipient if key_point(command.key) < split else donor
        replay = side.apply(command)
        assert replay.ok
    # nothing re-executed on either side
    for key, _ in ops:
        side = recipient if key_point(key) < split else donor
        assert side.version(key) == before_versions[key]
        assert (donor.version(key) if side is recipient
                else recipient.version(key)) == 0


@settings(max_examples=40)
@given(st.lists(st.integers(min_value=1, max_value=30),
                min_size=1, max_size=30))
def test_migrated_window_respects_low_water(seqs):
    """The low-water mark travels with the export: seqs at or below it are
    duplicates on the recipient too."""
    donor = KVStore()
    top = max(seqs)
    for seq in sorted(set(seqs)):
        donor.apply(put("k", f"v{seq}", seq, lwm=seq - 1))
    recipient = migrate_roundtrip(donor, 0, HASH_SPACE)
    session = recipient._sessions.get("c")
    assert session is not None
    assert session.low_water >= top - 1
    # a stale retransmit below the floor is an acked duplicate: no effect
    assert recipient.apply(put("k", "zzz", min(seqs) - 1 or 1)).ok
    assert "zzz" not in recipient.write_order("k")


def test_legacy_payload_parses_as_one_slot_window():
    session = DedupSession.from_payload([7, "k", True, "cached"])
    assert session.low_water == 6
    assert session.entries[7][0] == "k"
    assert session.entries[7][1].value == "cached"
    assert session.lookup(7).value == "cached"
    assert session.lookup(3).ok          # below the floor: acked duplicate
    assert session.lookup(8) is None     # new
