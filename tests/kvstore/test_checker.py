"""History checker detects what it should and passes what it should."""

from repro.kvstore.checker import HistoryChecker, HistoryEvent
from repro.protocols.types import Command, OpType


def put(key, value, client="c", seq=1):
    return Command(op=OpType.PUT, key=key, value=value, client_id=client, seq=seq)


def test_prefix_agreement_clean():
    checker = HistoryChecker()
    for replica in ("a", "b"):
        checker.record_apply(replica, 0, put("k", "v1"))
        checker.record_apply(replica, 1, put("k", "v2", seq=2))
    assert checker.check_prefix_agreement() == []


def test_prefix_agreement_detects_divergence():
    checker = HistoryChecker()
    checker.record_apply("a", 0, put("k", "v1"))
    checker.record_apply("b", 0, put("k", "DIFFERENT"))
    violations = checker.check_prefix_agreement()
    assert violations and "disagree at index 0" in violations[0]


def test_prefix_agreement_ignores_disjoint_indexes():
    checker = HistoryChecker()
    checker.record_apply("a", 0, put("k", "v1"))
    checker.record_apply("b", 1, put("k", "v2", seq=2))
    assert checker.check_prefix_agreement() == []


def test_monotonic_reads_clean():
    checker = HistoryChecker()
    checker.record_apply("a", 0, put("k", "v1", seq=1))
    checker.record_apply("a", 1, put("k", "v2", seq=2))
    checker.record_event(HistoryEvent("c", 1, OpType.GET, "k", "v1", 0, 10, "a"))
    checker.record_event(HistoryEvent("c", 2, OpType.GET, "k", "v2", 20, 30, "a"))
    assert checker.check_monotonic_reads() == []


def test_monotonic_reads_detects_regression():
    checker = HistoryChecker()
    checker.record_apply("a", 0, put("k", "v1", seq=1))
    checker.record_apply("a", 1, put("k", "v2", seq=2))
    checker.record_event(HistoryEvent("c", 1, OpType.GET, "k", "v2", 0, 10, "a"))
    checker.record_event(HistoryEvent("c", 2, OpType.GET, "k", "v1", 20, 30, "a"))
    violations = checker.check_monotonic_reads()
    assert violations and "going backwards" in violations[0]


def test_lease_freshness_clean():
    checker = HistoryChecker()
    checker.record_apply("a", 0, put("k", "v1", seq=1))
    checker.record_event(HistoryEvent("w", 1, OpType.PUT, "k", "v1", 0, 10, "a"))
    checker.record_event(HistoryEvent("r", 1, OpType.GET, "k", "v1", 20, 25, "b",
                                      local_read=True))
    assert checker.check_lease_read_freshness() == []


def test_lease_freshness_detects_stale_read():
    checker = HistoryChecker()
    checker.record_apply("a", 0, put("k", "old", seq=1))
    checker.record_apply("a", 1, put("k", "new", seq=2))
    checker.record_event(HistoryEvent("w", 2, OpType.PUT, "k", "new", 0, 10, "a"))
    checker.record_event(HistoryEvent("r", 1, OpType.GET, "k", "old", 20, 25, "b",
                                      local_read=True))
    violations = checker.check_lease_read_freshness()
    assert violations and "stale lease read" in violations[0]


def test_lease_freshness_ignores_concurrent_reads():
    """A local read that STARTED before the write completed may see either."""
    checker = HistoryChecker()
    checker.record_apply("a", 0, put("k", "old", seq=1))
    checker.record_apply("a", 1, put("k", "new", seq=2))
    checker.record_event(HistoryEvent("w", 2, OpType.PUT, "k", "new", 0, 30, "a"))
    checker.record_event(HistoryEvent("r", 1, OpType.GET, "k", "old", 20, 25, "b",
                                      local_read=True))
    assert checker.check_lease_read_freshness() == []


def test_check_all_aggregates():
    checker = HistoryChecker()
    checker.record_apply("a", 0, put("k", "v1"))
    checker.record_apply("b", 0, put("k", "OTHER"))
    assert len(checker.check_all()) >= 1
