"""History checker detects what it should and passes what it should."""

from repro.kvstore.checker import HistoryChecker, HistoryEvent
from repro.protocols.types import Command, OpType


def put(key, value, client="c", seq=1):
    return Command(op=OpType.PUT, key=key, value=value, client_id=client, seq=seq)


def test_prefix_agreement_clean():
    checker = HistoryChecker()
    for replica in ("a", "b"):
        checker.record_apply(replica, 0, put("k", "v1"))
        checker.record_apply(replica, 1, put("k", "v2", seq=2))
    assert checker.check_prefix_agreement() == []


def test_prefix_agreement_detects_divergence():
    checker = HistoryChecker()
    checker.record_apply("a", 0, put("k", "v1"))
    checker.record_apply("b", 0, put("k", "DIFFERENT"))
    violations = checker.check_prefix_agreement()
    assert violations and "disagree at index 0" in violations[0]


def test_prefix_agreement_ignores_disjoint_indexes():
    checker = HistoryChecker()
    checker.record_apply("a", 0, put("k", "v1"))
    checker.record_apply("b", 1, put("k", "v2", seq=2))
    assert checker.check_prefix_agreement() == []


def test_monotonic_reads_clean():
    checker = HistoryChecker()
    checker.record_apply("a", 0, put("k", "v1", seq=1))
    checker.record_apply("a", 1, put("k", "v2", seq=2))
    checker.record_event(HistoryEvent("c", 1, OpType.GET, "k", "v1", 0, 10, "a"))
    checker.record_event(HistoryEvent("c", 2, OpType.GET, "k", "v2", 20, 30, "a"))
    assert checker.check_monotonic_reads() == []


def test_monotonic_reads_detects_regression():
    checker = HistoryChecker()
    checker.record_apply("a", 0, put("k", "v1", seq=1))
    checker.record_apply("a", 1, put("k", "v2", seq=2))
    checker.record_event(HistoryEvent("c", 1, OpType.GET, "k", "v2", 0, 10, "a"))
    checker.record_event(HistoryEvent("c", 2, OpType.GET, "k", "v1", 20, 30, "a"))
    violations = checker.check_monotonic_reads()
    assert violations and "going backwards" in violations[0]


def test_lease_freshness_clean():
    checker = HistoryChecker()
    checker.record_apply("a", 0, put("k", "v1", seq=1))
    checker.record_event(HistoryEvent("w", 1, OpType.PUT, "k", "v1", 0, 10, "a"))
    checker.record_event(HistoryEvent("r", 1, OpType.GET, "k", "v1", 20, 25, "b",
                                      local_read=True))
    assert checker.check_lease_read_freshness() == []


def test_lease_freshness_detects_stale_read():
    checker = HistoryChecker()
    checker.record_apply("a", 0, put("k", "old", seq=1))
    checker.record_apply("a", 1, put("k", "new", seq=2))
    checker.record_event(HistoryEvent("w", 2, OpType.PUT, "k", "new", 0, 10, "a"))
    checker.record_event(HistoryEvent("r", 1, OpType.GET, "k", "old", 20, 25, "b",
                                      local_read=True))
    violations = checker.check_lease_read_freshness()
    assert violations and "stale lease read" in violations[0]


def test_lease_freshness_ignores_concurrent_reads():
    """A local read that STARTED before the write completed may see either."""
    checker = HistoryChecker()
    checker.record_apply("a", 0, put("k", "old", seq=1))
    checker.record_apply("a", 1, put("k", "new", seq=2))
    checker.record_event(HistoryEvent("w", 2, OpType.PUT, "k", "new", 0, 30, "a"))
    checker.record_event(HistoryEvent("r", 1, OpType.GET, "k", "old", 20, 25, "b",
                                      local_read=True))
    assert checker.check_lease_read_freshness() == []


def test_check_all_aggregates():
    checker = HistoryChecker()
    checker.record_apply("a", 0, put("k", "v1"))
    checker.record_apply("b", 0, put("k", "OTHER"))
    assert len(checker.check_all()) >= 1


# -- strict serializability of transactions (repro.shard.txn) -----------------


from repro.kvstore.checker import TxnEvent, check_strict_serializability


def txn(txn_id, start, end, *ops):
    return TxnEvent(txn_id=txn_id, start=start, end=end, ops=tuple(ops))


def test_serializable_clean_history_passes():
    events = [
        txn("t1", 0, 10, ("put", "x", "x1"), ("put", "y", "y1")),
        txn("t2", 20, 30, ("get", "x", "x1"), ("get", "y", "y1")),
        txn("t3", 40, 50, ("put", "x", "x3")),
        txn("t4", 60, 70, ("get", "x", "x3")),
    ]
    orders = {"x": ["x1", "x3"], "y": ["y1"]}
    assert check_strict_serializability(events, orders) == []


def test_concurrent_txns_may_serialize_either_way():
    # t2 and t3 overlap in real time; either order explains the reads.
    events = [
        txn("t1", 0, 10, ("put", "x", "x1")),
        txn("t2", 20, 40, ("put", "x", "x2")),
        txn("t3", 25, 45, ("get", "x", "x1")),  # reads BEFORE t2's write
    ]
    orders = {"x": ["x1", "x2"]}
    assert check_strict_serializability(events, orders) == []


def test_fractured_read_is_a_cycle():
    """t3 saw t1's x but t2's y while t2 also overwrote x — no serial
    order explains it: t3 < t2 via x (rw) and t2 < t3 via y (wr)... with
    t2 writing both keys the read is torn."""
    events = [
        txn("t1", 0, 10, ("put", "x", "x1"), ("put", "y", "y1")),
        txn("t2", 20, 30, ("put", "x", "x2"), ("put", "y", "y2")),
        txn("t3", 40, 50, ("get", "x", "x1"), ("get", "y", "y2")),
    ]
    orders = {"x": ["x1", "x2"], "y": ["y1", "y2"]}
    violations = check_strict_serializability(events, orders)
    assert violations and "cycle" in violations[0]


def test_stale_read_after_real_time_gap_is_a_violation():
    """t2 finished before t3 started, yet t3 read the pre-t2 value:
    serializable (t3 before t2) but NOT strictly serializable."""
    events = [
        txn("t1", 0, 10, ("put", "x", "x1")),
        txn("t2", 20, 30, ("put", "x", "x2")),
        txn("t3", 50, 60, ("get", "x", "x1")),
    ]
    orders = {"x": ["x1", "x2"]}
    violations = check_strict_serializability(events, orders)
    assert violations and "cycle" in violations[0]


def test_double_install_flagged():
    events = [txn("t1", 0, 10, ("put", "x", "x1"))]
    orders = {"x": ["x1", "x1"]}  # an acked write executed twice
    violations = check_strict_serializability(events, orders)
    assert violations and "re-executed" in violations[0]


def test_invented_read_flagged():
    events = [txn("t1", 0, 10, ("get", "x", "ghost"))]
    violations = check_strict_serializability(events, {"x": []})
    assert violations and "no store ever installed" in violations[0]


def test_read_of_missing_key_orders_before_first_writer():
    # t2 read x as missing AFTER t1 (which wrote x) finished: t2 must
    # precede t1 (rw) but real time says t1 precedes t2 — cycle.
    events = [
        txn("t1", 0, 10, ("put", "x", "x1")),
        txn("t2", 20, 30, ("get", "x", None)),
    ]
    orders = {"x": ["x1"]}
    violations = check_strict_serializability(events, orders)
    assert violations and "cycle" in violations[0]
    # ...but a CONCURRENT missing-read is fine (serializes before t1)
    events2 = [
        txn("t1", 0, 10, ("put", "x", "x1")),
        txn("t2", 5, 30, ("get", "x", None)),
    ]
    assert check_strict_serializability(events2, orders) == []


def test_unacknowledged_writers_constrain_nothing():
    """A committed-but-unacked txn's value sits in the install order with
    no event; readers of it and writers around it stay consistent."""
    events = [
        txn("t1", 0, 10, ("put", "x", "x1")),
        txn("t3", 40, 50, ("get", "x", "ghostwrite")),  # value IS installed
    ]
    orders = {"x": ["x1", "ghostwrite"]}  # middle writer never acked
    assert check_strict_serializability(events, orders) == []
