"""The `perf` microbench: leg shape, determinism, and the CI regression
contract."""

from repro.bench.perf import (
    check_regression,
    compare_to_baseline,
    render_perf,
    run_core_churn,
    run_perf,
)


def test_core_churn_is_deterministic():
    a = run_core_churn(scale=0.05, seed=0, duration_s=0.5)
    b = run_core_churn(scale=0.05, seed=0, duration_s=0.5)
    assert a["events"] == b["events"] > 0
    assert a["completed_ops"] == b["completed_ops"] > 0


def test_core_churn_seed_varies_schedule():
    a = run_core_churn(scale=0.05, seed=0, duration_s=0.5)
    b = run_core_churn(scale=0.05, seed=12345, duration_s=0.5)
    # Same shape of work, different deterministic phase.
    assert a["events"] == b["events"]


def test_run_perf_report_shape():
    report = run_perf(scale=0.05, seed=0, profile=False)
    assert set(report["legs"]) == {"core-churn", "single-group",
                                   "hosted-mux", "sharded-txn"}
    for leg in report["legs"].values():
        assert leg["events"] > 0
        assert leg["events_per_sec"] > 0
    assert report["events"] == sum(
        leg["events"] for leg in report["legs"].values())
    assert report["events_per_sec_normalized"] > 0
    assert "events/s" in render_perf(report)


def _fake_report(eps: float, norm: float) -> dict:
    return {"scale": 1.0, "seed": 0, "legs": {}, "events": 1, "wall_s": 1.0,
            "events_per_sec": eps, "sim_s_per_wall_s": 1.0,
            "calibration": 1.0, "events_per_sec_normalized": norm}


def test_check_regression_contract():
    baseline = {"pre_refactor": _fake_report(100.0, 0.01),
                "post_refactor": _fake_report(400.0, 0.04)}
    # Within 30% of the committed post number: ok.
    ok, message = check_regression(_fake_report(300.0, 0.03), baseline, 0.30)
    assert ok and message.startswith("ok")
    # More than 30% below it: fail.
    ok, message = check_regression(_fake_report(100.0, 0.01), baseline, 0.30)
    assert not ok and "REGRESSION" in message
    # The comparison is against post_refactor, not the pre number.
    comp = compare_to_baseline(_fake_report(400.0, 0.04), baseline)
    assert comp["baseline_label"] == "post_refactor"
    assert comp["speedup_normalized"] == 1.0


def test_compare_to_baseline_per_leg():
    def leg(eps: float) -> dict:
        return {"events": 10, "wall_s": 1.0, "events_per_sec": eps}

    ref = _fake_report(100.0, 0.01)
    ref["calibration"] = 2.0
    ref["legs"] = {"single-group": leg(100.0), "hosted-mux": leg(50.0)}
    report = _fake_report(200.0, 0.02)
    report["calibration"] = 1.0  # report machine runs at half speed...
    report["legs"] = {"single-group": leg(100.0), "hosted-mux": leg(100.0),
                      "sharded-txn": leg(40.0)}  # ...and has a new leg
    comp = compare_to_baseline(report, {"post_refactor": ref})
    # Raw 1.0x on single-group doubles after calibration correction
    # (ref machine scored 2x the report machine).
    assert comp["legs"]["single-group"] == 2.0
    assert comp["legs"]["hosted-mux"] == 4.0
    # Legs the baseline never measured are skipped, not infinite.
    assert "sharded-txn" not in comp["legs"]
