"""Determinism canary: same seed, same digest — always.

The in-process double run must agree unconditionally (schedule-order
determinism is seed-only by construction).  The committed golden digest
is additionally pinned across interpreter launches, but only under
``PYTHONHASHSEED=0`` (the CI perf job's environment), so that
comparison is gated on it."""

import json
import os
import pathlib

import pytest

from repro.bench.determinism import run_canary, state_digest

GOLDEN = (pathlib.Path(__file__).resolve().parents[2]
          / "benchmarks" / "results" / "determinism_canary.json")


def test_two_same_seed_runs_produce_identical_digests():
    # run_canary raises AssertionError if the double run diverges.
    summary = run_canary(scale=0.25, seed=0)
    assert summary["completed"] > 0
    assert summary["events"] > 0


def test_digest_is_seed_sensitive():
    digest_a, _ = state_digest(scale=0.25, seed=0)
    digest_b, _ = state_digest(scale=0.25, seed=1)
    assert digest_a != digest_b


def test_committed_golden_digest_matches():
    golden = json.loads(GOLDEN.read_text())
    if os.environ.get("PYTHONHASHSEED") != "0":
        pytest.skip("cross-interpreter digest pinned only under "
                    "PYTHONHASHSEED=0")
    digest, summary = state_digest(golden["scale"], golden["seed"])
    assert digest == golden["digest"], (
        f"determinism drift vs committed canary: events "
        f"{summary['events']} vs {golden['events']}")
