"""Experiment harness."""

import pytest

from repro.bench.harness import ExperimentSpec, PROTOCOLS, run_experiment
from repro.workload.ycsb import WorkloadConfig


def small_spec(**kwargs):
    defaults = dict(
        protocol="raft", clients_per_region=2, duration_s=3.0,
        warmup_s=1.0, cooldown_s=0.5,
        workload=WorkloadConfig(read_fraction=0.5, conflict_rate=0.0),
    )
    defaults.update(kwargs)
    return ExperimentSpec(**defaults)


def test_all_protocols_registered():
    assert set(PROTOCOLS) == {
        "raft", "raftstar", "raftstar-pql", "leaderlease", "multipaxos",
        "paxos-pql", "mencius", "coorpaxos",
    }


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_every_protocol_completes_requests(protocol):
    spec = small_spec(protocol=protocol, check_history=True)
    if protocol in ("mencius", "coorpaxos"):
        spec = spec.with_(execution_mode="ordered",
                          workload=WorkloadConfig(read_fraction=0.0,
                                                  conflict_rate=0.0))
    result = run_experiment(spec)
    assert result.completed > 0
    assert result.violations == []


def test_throughput_positive():
    result = run_experiment(small_spec())
    assert result.throughput_ops > 0


def test_latency_split_has_both_groups():
    result = run_experiment(small_spec())
    assert result.read_latency["leader"]["count"] > 0
    assert result.read_latency["followers"]["count"] > 0


def test_latency_accessor():
    result = run_experiment(small_spec())
    assert result.latency_ms("leader", "read", "p50") > 0


def test_same_seed_reproducible():
    a = run_experiment(small_spec(seed=5))
    b = run_experiment(small_spec(seed=5))
    assert a.completed == b.completed
    assert a.read_latency == b.read_latency


def test_different_seeds_differ():
    a = run_experiment(small_spec(seed=5))
    b = run_experiment(small_spec(seed=6))
    assert a.read_latency != b.read_latency


def test_with_override():
    spec = small_spec()
    changed = spec.with_(protocol="raftstar")
    assert changed.protocol == "raftstar" and spec.protocol == "raft"
