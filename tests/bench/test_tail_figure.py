"""The `tail` figure: phase budget table, gauges, profiler, JSONL export.

This is the CI obs smoke in miniature: run past the knee at a small scale,
assert the budget's phases sum to the end-to-end latency, that queueing
dominates the tail, and that the telemetry file parses.
"""

import json

from repro.bench import experiments as ex
from repro.bench.__main__ import main as bench_main


def test_tail_figure_end_to_end(tmp_path):
    out = str(tmp_path / "tail.jsonl")
    text = ex.tail_figure(0.2, seed=1, metrics_out=out)
    assert "Tail: Phase-by-phase latency budget" in text
    assert "end-to-end" in text
    for pct in ("p50", "p99", "p999"):
        assert f"{pct} exemplar" in text
    # Interval attribution: the reported phases sum to the reported
    # latency exactly, so every drift note reads 0.00%.
    assert "drift 0.00%" in text
    assert text.count("drift") == text.count("drift 0.00%")
    # Past the knee the tail IS the queue.
    assert "queueing dominates" in text
    assert "SimProfiler:" in text
    assert "queue gauges" in text
    with open(out) as src:
        rows = [json.loads(line) for line in src]
    assert rows[0]["type"] == "meta" and rows[0]["figure"] == "tail"
    spans = [r for r in rows if r["type"] == "span"]
    assert spans
    profile = [r for r in rows if r["type"] == "profile"]
    assert profile and all(r["count"] > 0 for r in profile)


def test_tail_figure_via_cli(tmp_path, capsys):
    out = str(tmp_path / "cli.jsonl")
    assert bench_main(["tail", "--scale", "0.2",
                       "--metrics-out", out]) == 0
    printed = capsys.readouterr().out
    assert "Tail: Phase-by-phase latency budget" in printed
    assert f"-> {out}" in printed
    assert [json.loads(line) for line in open(out)]


def test_open_loop_table_has_p999_column():
    table = ex.pipeline_open_loop(0.2, seed=1, loads=(300,),
                                  protocols=(("Raft", "raft"),))
    assert "Raft p999 ms" in table.columns
    assert table.cell("300", "Raft p999 ms") >= table.cell("300", "Raft p99 ms")


def test_open_loop_obs_note():
    table = ex.pipeline_open_loop(0.2, seed=1, loads=(1200,),
                                  protocols=(("Raft", "raft"),), obs=True)
    assert any("p99 budget" in note for note in table.notes)
