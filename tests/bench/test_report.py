"""Figure table rendering."""

import pytest

from repro.bench.report import FigureTable, render_all


def table():
    t = FigureTable(figure="Fig X", title="demo", columns=["system", "value"])
    t.add_row("raft", 1.25)
    t.add_row("pql", 2.5)
    return t


def test_render_contains_rows():
    text = table().render()
    assert "Fig X" in text and "raft" in text and "1.2" in text


def test_row_length_validated():
    with pytest.raises(ValueError):
        table().add_row("only-one-cell")


def test_cell_lookup():
    t = table()
    assert t.cell("pql", "value") == 2.5
    with pytest.raises(KeyError):
        t.cell("missing", "value")


def test_notes_rendered():
    t = table()
    t.notes.append("a caveat")
    assert "note: a caveat" in t.render()


def test_render_all_joins():
    text = render_all([table(), table()])
    assert text.count("Fig X") == 2


def test_float_formatting():
    t = FigureTable(figure="F", title="t", columns=["a"])
    t.add_row(3.14159)
    assert "3.1" in t.render()
