"""Figure table rendering."""

import pytest

from repro.bench.report import (FigureTable, GAUGE_RAMP, render_all,
                                render_timeline, render_timelines)


def table():
    t = FigureTable(figure="Fig X", title="demo", columns=["system", "value"])
    t.add_row("raft", 1.25)
    t.add_row("pql", 2.5)
    return t


def test_render_contains_rows():
    text = table().render()
    assert "Fig X" in text and "raft" in text and "1.2" in text


def test_row_length_validated():
    with pytest.raises(ValueError):
        table().add_row("only-one-cell")


def test_cell_lookup():
    t = table()
    assert t.cell("pql", "value") == 2.5
    with pytest.raises(KeyError):
        t.cell("missing", "value")


def test_notes_rendered():
    t = table()
    t.notes.append("a caveat")
    assert "note: a caveat" in t.render()


def test_render_all_joins():
    text = render_all([table(), table()])
    assert text.count("Fig X") == 2


def test_float_formatting():
    t = FigureTable(figure="F", title="t", columns=["a"])
    t.add_row(3.14159)
    assert "3.1" in t.render()


def test_timeline_scales_to_peak():
    samples = [(i * 1_000_000, float(i)) for i in range(10)]
    line = render_timeline("queue", samples, buckets=10)
    assert line.startswith("queue")
    assert "peak 9" in line
    body = line.split("|")[1]
    assert len(body) == 10
    assert body[0] == GAUGE_RAMP[0]  # zero sample -> blank cell
    assert body[-1] == GAUGE_RAMP[-1]  # the peak bucket saturates the ramp


def test_timeline_constant_series_is_flat():
    samples = [(i * 1000, 5.0) for i in range(20)]
    body = render_timeline("flat", samples, buckets=8).split("|")[1]
    assert set(body) == {GAUGE_RAMP[-1]}


def test_timeline_empty_series():
    assert "(no samples)" in render_timeline("empty", [])


def test_timelines_align_labels():
    gauges = {"a": [(0, 1.0), (10, 2.0)], "much_longer_name": [(0, 3.0)]}
    lines = render_timelines(gauges).splitlines()
    assert len(lines) == 2
    assert len({line.index("|") for line in lines}) == 1  # columns line up
