"""Live voter-set changes at the protocol layer, across the family.

One scenario, every protocol: a 3-replica group under traffic swaps s2
for a freshly spawned s3 through its own log — joint consensus (two
entries, quorums over Cold AND Cnew in between) for the Raft side,
α-bounded single-decree (one entry, the old voters govern the next α
slots) for the Paxos side.  Afterwards:

* the change is acked exactly once and traffic keeps flowing;
* every surviving replica (the joiner included) lands on config epoch 1;
* the joiner caught up from a snapshot to the leader's exact store
  digest and is a voting member (``joining`` cleared);
* the removed replica retired itself and rejects clients (the fencing
  details are in `test_fencing.py`).
"""

import pytest

from repro.protocols.messages import ConfigChange
from repro.protocols.multipaxos import MultiPaxosReplica
from repro.protocols.paxos_pql import PaxosPQLReplica
from repro.protocols.pql import RaftStarPQLReplica
from repro.protocols.raft import RaftReplica
from repro.protocols.raftstar import RaftStarReplica

CASES = [
    pytest.param(RaftReplica, "joint", id="raft-joint"),
    pytest.param(RaftStarReplica, "joint", id="raftstar-joint"),
    pytest.param(RaftStarPQLReplica, "joint", id="pql-joint"),
    pytest.param(MultiPaxosReplica, "alpha", id="multipaxos-alpha"),
    pytest.param(PaxosPQLReplica, "alpha", id="paxospql-alpha"),
]


def change_for(kind):
    if kind == "joint":
        return ConfigChange(kind="joint", epoch=1,
                            old=("s0", "s1", "s2"), new=("s0", "s1", "s3"))
    return ConfigChange(kind="alpha", epoch=1,
                        new=("s0", "s1", "s3"), alpha=8)


@pytest.mark.parametrize("cls,kind", CASES)
def test_replace_voter_live(make_group, cls, kind):
    group = make_group(cls)
    client = group.client
    for i in range(5):
        client.put("s0", f"k{i}", f"v{i}")
    group.run_for(300)
    assert client.ok_count() == 5

    group.spawn_joiner("s3")
    cfg_cmd = client.send_config("s0", change_for(kind))
    group.run_for(1300)
    assert client.replies[cfg_cmd.request_id].ok, "config change not acked"

    # Post-change traffic; with α=8 the window must churn through.
    for i in range(20):
        client.put("s0", f"post{i}", f"v{i}")
        group.run_for(10)
    group.run_for(500)
    assert client.ok_count() >= 26

    s0 = group.replicas["s0"]
    s2 = group.replicas["s2"]
    s3 = group.replicas["s3"]
    for name in ("s0", "s1", "s3"):
        assert group.replicas[name].config_epoch == 1, name
        assert not group.replicas[name].retired, name
    assert not s3.joining, "joiner still fenced after committed config"
    assert s3.store.applied_count > 0
    assert s3.store.digest() == s0.store.digest(), "joiner digest mismatch"
    assert s2.retired, "removed replica did not retire"


@pytest.mark.parametrize("cls,kind", CASES)
def test_config_replay_is_idempotent(make_group, cls, kind):
    """Re-sending the same epoch (a driver retry answered from dedup, or
    a log replay) must not re-run the transition or bump the epoch."""
    group = make_group(cls)
    group.spawn_joiner("s3")
    client = group.client
    first = client.send_config("s0", change_for(kind))
    group.run_for(1300)
    assert client.replies[first.request_id].ok

    again = client.send_config("s0", change_for(kind))
    group.run_for(800)
    # Dedup or epoch guard: answered (or rejected) without a second run.
    assert group.replicas["s0"].config_epoch == 1
    assert again.request_id in client.replies
    for i in range(5):
        client.put("s0", f"after{i}", "v")
    group.run_for(400)
    assert client.ok_count() >= 6


@pytest.mark.parametrize("cls,kind", [CASES[0], CASES[3]])
def test_pure_removal_shrinks_the_group(make_group, cls, kind):
    """Removing a voter with no joiner: 3 -> 2 voters, commits continue
    (majority of 2 = both), the removed replica retires."""
    group = make_group(cls)
    client = group.client
    if kind == "joint":
        change = ConfigChange(kind="joint", epoch=1,
                              old=("s0", "s1", "s2"), new=("s0", "s1"))
    else:
        change = ConfigChange(kind="alpha", epoch=1,
                              new=("s0", "s1"), alpha=8)
    cfg_cmd = client.send_config("s0", change)
    group.run_for(1300)
    assert client.replies[cfg_cmd.request_id].ok
    for i in range(10):
        client.put("s0", f"k{i}", "v")
        group.run_for(10)
    group.run_for(500)
    assert client.ok_count() >= 11
    assert group.replicas["s2"].retired
    assert group.replicas["s0"].config_epoch == 1
