"""Property tests for the membership config algebra (DESIGN.md §13).

The two reconfiguration styles stand on three pure invariants, pinned
here over random inputs rather than the hand-picked cases the protocol
suites use:

* **joint quorums intersect** — any two ack sets that each satisfy the
  joint rule (majority of Cold AND of Cnew) share a member, for every
  Cold/Cnew pair.  This is the whole safety argument for changing voters
  without a stop-the-world barrier;
* **the α-window bound** — no slot is ever governed by a config decided
  after ``slot - α``, and a decision past the commit frontier can never
  reach back into the open proposer window;
* **catch-up determinism** — a full-store snapshot plus a replayed log
  suffix lands a fresh replica on the byte-identical store digest, which
  is what lets a replacement join from empty mid-run.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.kvstore.store import KVStore  # noqa: E402
from repro.membership import (  # noqa: E402
    ConfigLog,
    VoterView,
    is_quorum,
    joint_quorum,
    majority_of,
)
from repro.protocols.types import Command, OpType  # noqa: E402

names = st.integers(min_value=0, max_value=11).map(lambda i: f"s{i}")
voter_sets = st.frozensets(names, min_size=1, max_size=9)


def subsets_of(voters):
    return st.frozensets(st.sampled_from(sorted(voters)),
                         max_size=len(voters))


# -- joint quorums ------------------------------------------------------------

@given(st.data())
@settings(max_examples=300, deadline=None)
def test_joint_quorums_always_intersect(data):
    old = data.draw(voter_sets, label="Cold")
    new = data.draw(voter_sets, label="Cnew")
    universe = old | new
    a = data.draw(subsets_of(universe), label="acks A")
    b = data.draw(subsets_of(universe), label="acks B")
    if joint_quorum(old, new, a) and joint_quorum(old, new, b):
        assert a & b, (
            f"disjoint joint quorums {sorted(a)} / {sorted(b)} over "
            f"Cold={sorted(old)} Cnew={sorted(new)}")


@given(st.data())
@settings(max_examples=300, deadline=None)
def test_voter_view_joint_matches_predicate(data):
    old = data.draw(voter_sets)
    new = data.draw(voter_sets)
    acks = data.draw(subsets_of(old | new))
    view = VoterView.joint(old, new, epoch=1)
    assert view.quorum(acks) == joint_quorum(old, new, acks)
    assert view.voters == old | new
    assert view.newest == new


@given(voter_sets, st.data())
@settings(max_examples=200, deadline=None)
def test_outsider_acks_are_inert(voters, data):
    """A retired replica's ack never counts toward a quorum."""
    outsiders = data.draw(st.frozensets(names, max_size=5))
    acks = data.draw(subsets_of(voters)) | (outsiders - voters)
    assert is_quorum(voters, acks) == is_quorum(voters, acks & voters)


@given(voter_sets)
def test_majority_is_a_strict_majority(voters):
    need = majority_of(voters)
    assert 2 * need > len(voters)
    assert 2 * (need - 1) <= len(voters)


# -- the α window -------------------------------------------------------------

decisions = st.lists(
    st.tuples(st.integers(min_value=0, max_value=10_000), voter_sets),
    min_size=0, max_size=8)


def build_log(initial, alpha, decided):
    """Decide configs at strictly rising slots with rising epochs; return
    the log plus [(decision_slot, epoch)] for the bound check."""
    log = ConfigLog(initial=initial, alpha=alpha)
    slots = []
    slot = -1
    for epoch, (gap, voters) in enumerate(decided, start=1):
        slot = slot + 1 + gap
        log.decide(slot, voters, epoch)
        slots.append((slot, epoch))
    return log, slots


@given(voter_sets, st.integers(min_value=1, max_value=512), decisions,
       st.integers(min_value=0, max_value=20_000))
@settings(max_examples=300, deadline=None)
def test_alpha_window_bound(initial, alpha, decided, probe):
    """voters_at(s) never comes from a config decided after s - α."""
    log, slots = build_log(initial, alpha, decided)
    governing_epoch = log.epoch_at(probe)
    if governing_epoch == 0:
        assert log.voters_at(probe) == initial
        return
    decision_slot = dict((e, s) for s, e in slots)[governing_epoch]
    assert decision_slot + alpha <= probe, (
        f"slot {probe} governed by a config decided at {decision_slot} "
        f"with α={alpha}")


@given(voter_sets, st.integers(min_value=1, max_value=512), decisions,
       st.data())
@settings(max_examples=300, deadline=None)
def test_decision_past_frontier_cannot_reach_open_window(initial, alpha,
                                                         decided, data):
    """While `window_open(next_slot, frontier)` holds, a config decided
    at any slot past the frontier can never govern `next_slot` — the
    proposer gate is exactly what makes `voters_at` stable for slots
    already in flight."""
    log, _ = build_log(initial, alpha, decided)
    frontier = data.draw(st.integers(min_value=0, max_value=20_000))
    next_slot = data.draw(st.integers(min_value=0,
                                      max_value=frontier + alpha))
    assert log.window_open(next_slot, frontier)
    before = log.voters_at(next_slot)
    late_slot = frontier + 1 + data.draw(
        st.integers(min_value=0, max_value=1000))
    log.decide(late_slot, frozenset({"late"}), log.epoch + 1)
    assert log.voters_at(next_slot) == before


@given(voter_sets, st.integers(min_value=1, max_value=64), decisions)
@settings(max_examples=200, deadline=None)
def test_decide_is_idempotent_under_replay(initial, alpha, decided):
    log, slots = build_log(initial, alpha, decided)
    snapshot = list(log.entries)
    for slot, epoch in slots:  # a crash-recovery replay of the whole log
        log.decide(slot, frozenset({"replayed"}), epoch)
    assert log.entries == snapshot


# -- catch-up snapshots -------------------------------------------------------

ops = st.lists(
    st.tuples(st.integers(min_value=0, max_value=15),
              st.integers(min_value=0, max_value=3),
              st.text(alphabet="abcdef", min_size=0, max_size=6)),
    min_size=0, max_size=40)


def apply_ops(store, triples, clients, start_seq=0):
    for i, (key, client, value) in enumerate(triples):
        store.apply(Command(op=OpType.PUT, key=f"k{key}", value=value,
                            client_id=f"c{client % clients}",
                            seq=start_seq + i + 1))


@given(ops, ops)
@settings(max_examples=150, deadline=None)
def test_snapshot_plus_suffix_replay_is_digest_identical(prefix, suffix):
    """export_full -> install_full -> replay the same suffix == applying
    the whole history natively: store digests (records, dedup windows,
    applied counters) match byte for byte."""
    native = KVStore()
    apply_ops(native, prefix, clients=4)

    joiner = KVStore()
    joiner.install_full(native.export_full())
    assert joiner.digest() == native.digest()

    apply_ops(native, suffix, clients=4, start_seq=10_000)
    apply_ops(joiner, suffix, clients=4, start_seq=10_000)
    assert joiner.digest() == native.digest()
    assert joiner.applied_count == native.applied_count
