"""Cluster-level membership: live host replacement end to end.

The protocol suites (test_protocol_reconfig) pin the voter-set mechanics
in isolation; these tests drive the whole deployment — machine layout,
router, retrying sessions, history checker — through
`ShardedCluster.replace_host` / `add_replica` / `remove_replica` and hold
the same client-visible contract as the reshard experiments: zero lost or
duplicated acks, zero duplicate executions, per-shard linearizability,
and traffic on both sides of the replacement window.

`REPRO_BENCH_SCALE` (default 0.3) scales client counts and durations,
matching the CI membership leg.
"""

import os

import pytest

from repro.bench.experiments import membership_spec
from repro.shard.cluster import (
    ShardedCluster,
    ShardedSpec,
    UnsupportedProtocolError,
    run_membership_experiment,
)
from repro.shard.nemesis import Nemesis
from repro.sim.units import sec
from repro.workload.ycsb import WorkloadConfig

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))

FAMILIES = [
    pytest.param("raft", "joint", id="raft-joint"),
    pytest.param("multipaxos", "alpha", id="multipaxos-alpha"),
]


@pytest.mark.parametrize("protocol,kind", FAMILIES)
def test_replace_host_contract(protocol, kind):
    """Kill one data machine mid-run, splice in a replacement through the
    protocol's own reconfiguration style, and check the ack contract."""
    spec = membership_spec(scale=SCALE, seed=3, protocol=protocol)
    result = run_membership_experiment(spec)

    assert result.kind == kind
    assert result.replacement_completed
    assert result.replacement_host is not None
    assert result.groups_changed >= 1
    assert result.config_changes == result.groups_changed

    # The contract: a permanently dead machine may delay acks (clients
    # re-route on retry timeout) but never lose, duplicate, or re-execute
    # an acknowledged command.
    assert result.acks_lost == 0
    assert result.acks_duplicated == 0
    assert result.duplicate_executions == 0
    assert result.linearizable

    # Real work on both sides of the window.
    assert result.completed > 0
    assert result.pre_throughput > 0
    assert result.post_throughput > 0


@pytest.mark.parametrize("protocol", ["raft", "multipaxos"])
def test_nemesis_host_replace_schedule(protocol):
    """The same fault through the nemesis schedule (`host_replace`): the
    nemesis picks a random alive data machine and replaces it live."""
    spec = membership_spec(scale=SCALE, seed=5, protocol=protocol,
                           # park the experiment's own trigger past the
                           # run end; the nemesis drives the replacement
                           replace_at_s=1000.0)
    holder = {}

    def install(cluster):
        nemesis = Nemesis(cluster, seed=5)
        nemesis.host_replace_at(0.3 * spec.duration_s)
        cluster.nemesis = holder["nemesis"] = nemesis

    result = run_membership_experiment(spec, nemesis=install)
    assert holder["nemesis"].host_replaces == 1
    assert result.config_changes >= 1
    assert result.acks_lost == 0
    assert result.acks_duplicated == 0
    assert result.duplicate_executions == 0
    assert result.linearizable


@pytest.mark.parametrize("protocol,kind", FAMILIES)
def test_add_then_remove_replica(protocol, kind):
    """Grow a group by one voter, then shrink it again — two logged
    changes with no machine death involved."""
    spec = ShardedSpec(
        protocol=protocol, num_shards=2, placement="spread",
        clients_per_region=max(1, round(2 * SCALE / 0.3)),
        workload=WorkloadConfig(read_fraction=0.2, conflict_rate=0.0,
                                records=200, value_size=64),
        duration_s=max(6.0, 6.0 * SCALE / 0.3),
        warmup_s=0.5, cooldown_s=0.5, seed=11,
        check_history=True, hosts_per_site=1)
    cluster = ShardedCluster(spec)
    original = list(cluster.members[0])
    site = cluster.groups[0][original[0]].site
    leader_name = f"g0_r_{cluster.leaders[0]}"
    victim = next(m for m in original if m != leader_name)
    added = {}

    # α=8 keeps the window short at this trickle of load; joint ignores it.
    cluster.sim.schedule_at(
        sec(1.0), lambda: added.update(
            name=cluster.add_replica(0, site, alpha=8)))
    cluster.sim.schedule_at(
        sec(3.0), lambda: cluster.remove_replica(0, victim, alpha=8))
    cluster.sim.run(until=sec(spec.duration_s))

    assert cluster.config_epochs[0] == 2
    assert cluster.metrics.counters.get("config_changes", 0) == 2
    joiner = cluster.groups[0][added["name"]]
    assert added["name"] in cluster.members[0]
    assert victim not in cluster.members[0]
    assert len(cluster.members[0]) == len(original)
    assert not joiner.joining, "joiner still fenced after committed config"
    assert joiner.store.applied_count > 0, "joiner never caught up"
    assert cluster.groups[0][victim].retired
    # The untouched group never changed.
    assert cluster.config_epochs[1] == 0
    for shard, checker in sorted(cluster.checkers.items()):
        assert not checker.check_all(), f"shard {shard} not linearizable"


def test_leaderless_protocols_are_rejected():
    """Mencius has no leader to drive a logged config change through;
    `replace_host` must refuse up front rather than wedge the group."""
    spec = ShardedSpec(
        protocol="mencius", num_shards=1, placement="spread",
        clients_per_region=1,
        workload=WorkloadConfig(records=50, value_size=64),
        duration_s=1.0, seed=1, hosts_per_site=1)
    cluster = ShardedCluster(spec)
    target = sorted(cluster.data_host_names)[0]
    with pytest.raises(UnsupportedProtocolError):
        cluster.replace_host(target)
