"""Stale-voter fencing: the LEASE_LOCAL regression.

The dangerous window for lease protocols: the final config commits and
the removed replica retires, but it still holds lease grants acked
*before* the change — valid for up to one lease duration.  Unfenced, it
would answer LEASE_LOCAL reads from state the new voter set no longer
guards.  These tests pin the fence on both client-facing paths (the
request handler and the lease-read path) while the lease is provably
still valid, plus the grant-side decay that closes the window for good:
nobody grants fresh leases to a lingering or retired member, so its
holder status ages out instead of being renewed forever.
"""

import pytest

from repro.protocols.messages import ConfigChange
from repro.protocols.paxos_pql import PaxosPQLReplica
from repro.protocols.pql import RaftStarPQLReplica
from repro.protocols.types import Consistency
from repro.sim.units import ms, sec

CASES = [
    pytest.param(RaftStarPQLReplica, "joint", id="pql-joint"),
    pytest.param(PaxosPQLReplica, "alpha", id="paxospql-alpha"),
]


def change_for(kind):
    if kind == "joint":
        return ConfigChange(kind="joint", epoch=1,
                            old=("s0", "s1", "s2"), new=("s0", "s1", "s3"))
    return ConfigChange(kind="alpha", epoch=1,
                        new=("s0", "s1", "s3"), alpha=8)


def replace_s2(group, kind):
    """Write a key everyone has applied, then swap s2 for a fresh s3."""
    group.client.put("s0", "fenced-key", "pre-change")
    group.run_for(300)
    group.spawn_joiner("s3")
    cfg = group.client.send_config("s0", change_for(kind))
    group.run_for(1300)
    assert group.client.replies[cfg.request_id].ok
    assert group.replicas["s2"].retired


@pytest.mark.parametrize("cls,kind", CASES)
def test_removed_replica_rejects_lease_reads(make_group, cls, kind):
    # A 10 s lease makes the window unambiguous: every grant s2 acked
    # before the change is still valid when the read arrives.
    group = make_group(cls, lease_duration=sec(10),
                       lease_renew_interval=sec(2))
    replace_s2(group, kind)
    s2 = group.replicas["s2"]
    assert s2.leases.valid_grant_count() >= group.config.majority, \
        "test premise broken: s2's pre-change leases should still be valid"

    served_before = s2.local_reads_served
    read = group.client.get("s2", "fenced-key",
                            consistency=Consistency.LEASE_LOCAL)
    group.run_for(200)
    reply = group.client.replies[read.request_id]
    assert not reply.ok, "retired replica served a LEASE_LOCAL read"
    assert reply.value is None
    assert s2.local_reads_served == served_before


@pytest.mark.parametrize("cls,kind", CASES)
def test_removed_replica_rejects_writes(make_group, cls, kind):
    group = make_group(cls)
    replace_s2(group, kind)
    write = group.client.put("s2", "fenced-key", "post-change")
    group.run_for(300)
    reply = group.client.replies[write.request_id]
    assert not reply.ok, "retired replica accepted a write"
    # The rejection names the fenced server so a routed client knows
    # which table entry to repair.
    assert reply.server == "s2"


@pytest.mark.parametrize("cls,kind", CASES)
def test_surviving_replica_still_serves_lease_reads(make_group, cls, kind):
    """Control: the fence is the `retired` flag, not a side effect of the
    reconfiguration — a surviving voter keeps the lease-read fast path."""
    group = make_group(cls, lease_duration=sec(10),
                       lease_renew_interval=sec(2))
    replace_s2(group, kind)
    group.run_for(500)  # a renew round over the new voter set
    s1 = group.replicas["s1"]
    served_before = s1.local_reads_served
    read = group.client.get("s1", "fenced-key",
                            consistency=Consistency.LEASE_LOCAL)
    group.run_for(300)
    reply = group.client.replies[read.request_id]
    assert reply.ok
    assert reply.value == "pre-change"
    assert s1.local_reads_served == served_before + 1


@pytest.mark.parametrize("cls,kind", CASES)
def test_no_fresh_grants_to_removed_member(make_group, cls, kind):
    """Grant-side decay: survivors stop leasing to the removed member the
    moment it leaves the voter set (lingering learners included), and the
    retired replica stops granting entirely — so its holder status, and
    with it the leader's commit wait on its acks, ages out within one
    lease duration instead of being renewed forever."""
    group = make_group(cls)
    replace_s2(group, kind)
    s2 = group.replicas["s2"]
    granted_to_s2 = {name: r.leases.granted.get("s2", 0)
                     for name, r in group.replicas.items() if name != "s2"}
    s2_granted = dict(s2.leases.granted)
    group.run_for(1500)  # several renew intervals
    for name, replica in group.replicas.items():
        if name == "s2":
            continue
        assert replica.leases.granted.get("s2", 0) == granted_to_s2[name], \
            f"{name} granted a fresh lease to the removed member"
        assert "s2" not in replica.lease_peers()
    assert s2.leases.granted == s2_granted, "retired replica kept granting"
    # And the decay completes: one lease duration after the change, s2 no
    # longer counts as an active holder anywhere.
    group.run_for(group.config.lease_duration / ms(1))
    for name in ("s0", "s1", "s3"):
        assert "s2" not in group.replicas[name].leases.active_holders()
