"""Shared harness for the membership tests: a minimal client and a
single-group builder (simulator + LAN + one consensus group), the same
shape the protocol-level suites use, plus the spawn-a-joiner helper the
reconfiguration tests drive."""

import dataclasses

import pytest

from repro.protocols.config import ClusterConfig
from repro.protocols.messages import ClientReply, ClientRequest
from repro.protocols.types import Command, OpType
from repro.sim.events import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Node, NodeCosts
from repro.sim.rng import SplitRng
from repro.sim.topology import symmetric_lan
from repro.sim.units import ms


class LittleClient(Node):
    """Fire-and-collect client: every reply is kept by request id."""

    def __init__(self, name, sim, network):
        super().__init__(name, sim, network, site="s0",
                         costs=NodeCosts(per_message=0, per_command=0,
                                         per_byte=0))
        self.replies = {}
        self.seq = 0

    def put(self, server, key, value):
        self.seq += 1
        cmd = Command(op=OpType.PUT, key=key, value=value,
                      client_id=self.name, seq=self.seq)
        self.send(server, ClientRequest(command=cmd))
        return cmd

    def get(self, server, key, consistency=None):
        self.seq += 1
        kwargs = {} if consistency is None else {"consistency": consistency}
        cmd = Command(op=OpType.GET, key=key, client_id=self.name,
                      seq=self.seq, **kwargs)
        self.send(server, ClientRequest(command=cmd))
        return cmd

    def send_config(self, server, change):
        self.seq += 1
        cmd = change.encode(self.name, self.seq)
        self.send(server, ClientRequest(command=cmd))
        return cmd

    def ok_count(self):
        return sum(1 for r in self.replies.values() if r.ok)

    def on_message(self, src, message):
        if isinstance(message, ClientReply):
            self.replies[message.request_id] = message


class Group:
    """One consensus group plus its simulator, network, and client."""

    def __init__(self, cls, n=3, seed=7, **config_kwargs):
        self.cls = cls
        self.sim = Simulator()
        topo = symmetric_lan(n + 2, rtt_ms_value=2.0)
        self.network = Network(self.sim, topo, rng=SplitRng(seed),
                               config=NetworkConfig(fifo=True))
        self.config = ClusterConfig(
            replicas={f"s{i}": f"s{i}" for i in range(n)},
            initial_leader="s0",
            election_timeout_min=ms(150), election_timeout_max=ms(300),
            heartbeat_interval=ms(30), **config_kwargs)
        self.replicas = {name: cls(name, self.sim, self.network, self.config)
                         for name in self.config.names}
        self.client = LittleClient("client", self.sim, self.network)
        self.sim.run(until=ms(200))  # settle the initial leadership

    def spawn_joiner(self, name):
        """A fresh, empty replica that must not campaign until a committed
        config makes it a voter (the cluster layer does the same dance)."""
        config = dataclasses.replace(
            self.config,
            replicas={**self.config.replicas, name: name},
            initial_leader=None)
        joiner = self.cls(name, self.sim, self.network, config)
        joiner.joining = True
        for attr in ("_election_timer", "_prepare_timer"):
            timer = getattr(joiner, attr, None)
            if timer is not None:
                timer.cancel()
        self.replicas[name] = joiner
        return joiner

    def run_for(self, duration_ms):
        self.sim.run(until=self.sim.now + ms(duration_ms))


@pytest.fixture
def make_group():
    return Group
