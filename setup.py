from setuptools import find_packages, setup

setup(
    name="paxos-raft-repro",
    version="0.2.0",
    description=(
        "Simulation-based reproduction of 'On the Parallels between Paxos "
        "and Raft, and how to Port Optimizations' (PODC 2019), grown into "
        "a sharded multi-group consensus testbed"
    ),
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={
        "console_scripts": [
            "repro-bench=repro.bench.__main__:main",
        ],
    },
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
)
