#!/usr/bin/env python
"""Cross-shard transactions: 2PC over Raft groups, surviving the faults
that matter.

The transaction layer is built purely against the protocol-agnostic
command-log interface (swap protocol="raft" for "multipaxos" below — it
runs unchanged, which is the paper's porting thesis at the composition
layer).  Every 2PC step goes through a participant group's committed log:
PREPARE locks keys, stages writes, and votes as replicated state, so a
participant shrugs off its leader crashing mid-transaction; the commit
decision is itself logged in the transaction's home shard, so a crashed
coordinator recovers by replaying the decision log instead of trusting
its memory.

This example runs 50 % cross-shard / 50 % single-shard transactional load
over 4 groups while a nemesis kills a shard leader mid-prepare traffic,
kills the Oregon coordinator mid-commit traffic, and partitions another
leader — then audits the run: zero lost or duplicated acknowledgements,
zero re-executed writes, and the committed history checks strictly
serializable.

Run:  PYTHONPATH=src python examples/txn_kv.py
"""

from repro.shard import Nemesis, TxnSpec, run_txn_experiment
from repro.workload.ycsb import WorkloadConfig


def main():
    spec = TxnSpec(
        protocol="raft",
        num_shards=4,
        placement="spread",
        clients_per_region=12,
        workload=WorkloadConfig(read_fraction=0.5, conflict_rate=0.0,
                                value_size=64, records=10_000),
        duration_s=8.0, warmup_s=1.5, cooldown_s=0.5,
        seed=11, check_history=True,
        txn_size=2, cross_shard_ratio=0.5,
    )

    log_holder = {}

    def nemesis(cluster):
        nem = Nemesis(cluster, seed=11)
        nem.leader_kill_at(2.5)          # a participant leader, mid-prepare
        nem.coordinator_kill_at(3.5, 0)  # the Oregon coordinator, mid-commit
        nem.leader_partition_at(5.0)     # a gray failure for good measure
        log_holder["nemesis"] = nem

    print(f"== {spec.num_shards} shards, {int(spec.cross_shard_ratio*100)}% "
          f"cross-shard 2-op transactions, under fire ==\n")
    result = run_txn_experiment(spec, nemesis=nemesis)

    print("fault schedule as it fired:")
    for at_s, what in log_holder["nemesis"].log:
        print(f"  t={at_s:5.2f}s  {what}")

    print(f"\ncommitted: {result.committed_total} transactions "
          f"({result.single_shard} single-shard fast path, "
          f"{result.cross_shard} cross-shard 2PC)")
    print(f"throughput: {result.txn_throughput:.1f} txn/s = "
          f"{result.ops_throughput:.1f} ops/s in the steady window")
    print(f"2PC: {result.commits_2pc} commits, {result.attempt_aborts} "
          f"attempts aborted by wait-die, {result.waits} waits, "
          f"{result.recoveries} coordinator recovery (decision-log replay)")
    print(f"acks: {result.acks_lost} lost, {result.acks_duplicated} "
          f"duplicated, {result.duplicate_executions} writes re-executed")
    print(f"locks left at cutoff (in-flight transactions only): "
          f"{result.locks_left}")
    print("strict serializability: "
          + ("PASS — a serial order exists that explains every read/write "
             "and embeds real time"
             if result.strict_serializable
             else f"VIOLATIONS: {result.serializability_violations[:3]}"))
    print("per-shard prefix agreement: "
          + ("PASS" if all(not v for v in result.prefix_violations.values())
             else f"VIOLATIONS: {result.prefix_violations}"))


if __name__ == "__main__":
    main()
