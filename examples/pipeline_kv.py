#!/usr/bin/env python
"""The session API: pipelined requests, consistency levels, open-loop load.

Three short demos on the tight-majority 3-site deployment (Oregon leads):

1. the explicit `Session` API — get/put/batch with per-operation
   consistency, completions out of order through a depth-8 window;
2. the depth sweep — the SAME six closed-loop clients, once with one
   outstanding request each (the paper's client) and once with depth-8
   sessions: in-flight requests, not client count, set throughput;
3. open-loop load — Poisson arrivals at a rate the leader cannot serve,
   showing the latency knee a closed loop can never produce.

Run:  PYTHONPATH=src python examples/pipeline_kv.py
"""

from repro.bench.harness import Cluster, ExperimentSpec
from repro.metrics.recorder import MetricsRecorder
from repro.protocols.types import Consistency
from repro.sim.topology import ec2_three_regions
from repro.sim.units import sec
from repro.workload.session import Session
from repro.workload.ycsb import WorkloadConfig


def spec(**overrides) -> ExperimentSpec:
    base = dict(
        protocol="raft", leader_site="oregon", topology=ec2_three_regions(),
        clients_per_region=2, duration_s=5.0, warmup_s=1.5, cooldown_s=0.5,
        workload=WorkloadConfig(read_fraction=0.5, conflict_rate=0.05),
        seed=7, check_history=True, full_check=True,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def demo_session_api() -> None:
    print("== the Session API: explicit ops through a depth-8 window ==")
    cluster = Cluster(spec(clients_per_region=0))
    session = Session(
        "app", cluster.sim, cluster.network, "oregon", "r_oregon",
        cluster.spec.workload, cluster.topology.sites,
        cluster.rng.stream("client:app"), MetricsRecorder(), depth=8)
    done = []
    session.on_complete_hooks.append(
        lambda command, reply, start, end: done.append(
            (command.op.value, command.key, reply.value,
             reply.local_read, (end - start) / 1000.0)))
    session.put("user:42", "alice")
    session.batch([("put", f"cart:{i}", f"item-{i}") for i in range(5)])
    session.get("user:42")
    session.get("user:42", consistency=Consistency.LINEARIZABLE)
    cluster.sim.run(until=sec(2.0))
    for op, key, value, local, latency_ms in done:
        print(f"    {op:>3} {key:<8} -> {value!r:<10} "
              f"({latency_ms:5.1f} ms{', lease-local' if local else ''})")
    print(f"    {session.completed} ops, window depth 8, "
          f"one (client_id, seq) namespace\n")


def run(depth=1, offered_load=None):
    return Cluster(spec(pipeline_depth=depth,
                        offered_load=offered_load)).run()


def demo_depth_sweep() -> None:
    print("== same 6 clients, deeper sessions ==")
    for depth in (1, 2, 4, 8):
        result = run(depth=depth)
        safe = "linearizable" if not result.violations else "VIOLATIONS"
        print(f"    depth {depth}: {result.throughput_ops:7.1f} ops/s "
              f"(mean {result.overall_latency['mean']:5.1f} ms, {safe})")
    print("    -> pipelined sessions saturate the leader with a fleet an")
    print("       order of magnitude smaller than the closed-loop sweeps\n")


def demo_open_loop() -> None:
    print("== open-loop (Poisson) arrivals: the latency knee ==")
    for load in (200, 600, 1800):
        result = run(depth=8, offered_load=float(load))
        print(f"    offered {load:>5} ops/s: served "
              f"{result.completion_throughput_ops:7.1f} ops/s, "
              f"mean latency {result.overall_latency['mean']:7.1f} ms "
              f"(p99 {result.overall_latency['p99']:7.1f})")
    print("    -> past the knee the server still runs at capacity, but")
    print("       queueing delay — invisible to closed-loop clients — "
          "dominates latency")


def main() -> None:
    demo_session_api()
    demo_depth_sweep()
    demo_open_loop()


if __name__ == "__main__":
    main()
