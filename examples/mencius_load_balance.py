#!/usr/bin/env python
"""Mencius balances load across replicas (the Figure 10 scenario).

Saturates a 100%-write workload against single-leader Raft and against
Raft*-Mencius, printing per-replica CPU utilization: Raft pins one replica
at 100% while the rest idle, Mencius spreads the work and pushes more
operations through.

Run:  python examples/mencius_load_balance.py
"""

from repro.bench.harness import Cluster, ExperimentSpec
from repro.bench.report import FigureTable
from repro.sim.units import sec
from repro.workload.ycsb import WorkloadConfig


def run(protocol, mode=None):
    spec = ExperimentSpec(
        protocol=protocol,
        clients_per_region=60,
        duration_s=5.0,
        warmup_s=1.5,
        cooldown_s=0.5,
        workload=WorkloadConfig(read_fraction=0.0, conflict_rate=0.0),
        execution_mode=mode,
        seed=4,
    )
    cluster = Cluster(spec)
    result = cluster.run()
    utils = {name.replace("r_", ""): replica.utilization(sec(spec.duration_s))
             for name, replica in cluster.replicas.items()}
    return result, utils


def main():
    raft, raft_utils = run("raft")
    mencius, mencius_utils = run("mencius", mode="commutative")

    table = FigureTable(
        figure="Mencius demo",
        title="100% writes, 60 clients/region: throughput and CPU utilization",
        columns=["system", "ops/s"] + list(raft_utils),
    )
    table.add_row("Raft (leader=oregon)", raft.throughput_ops,
                  *[f"{u:.0%}" for u in raft_utils.values()])
    table.add_row("Raft*-Mencius", mencius.throughput_ops,
                  *[f"{u:.0%}" for u in mencius_utils.values()])
    print(table.render())
    print()
    gain = mencius.throughput_ops / raft.throughput_ops
    print(f"Mencius pushes {gain:.2f}x the operations through the same five")
    print("replicas: Raft's Oregon leader is pegged while its followers idle;")
    print("Mencius gives every region's replica the leader role for its own")
    print("slice of the log (indexes i with i mod 5 == rank).")


if __name__ == "__main__":
    main()
