#!/usr/bin/env python
"""Sharded multi-group consensus: 4 Raft groups over one simulated WAN.

Builds a hash-partitioned, 4-shard deployment on the paper's five-region
topology, runs uniform YCSB load through shard-routed clients, and shows
the two leader placements side by side: `spread` (leaders round-robined
across regions) vs `colocated` (every leader in Oregon — the Figure 10b
single-leader bottleneck reproduced at shard granularity).

Run:  PYTHONPATH=src python examples/sharded_kv.py
"""

from repro.shard import ShardedSpec, run_sharded_experiment
from repro.workload.ycsb import WorkloadConfig


def show(result):
    spec = result.spec
    print(f"  placement={spec.placement:<10} shards={spec.num_shards}")
    print(f"    leaders: " + ", ".join(
        f"g{shard}->{site}" for shard, site in sorted(result.leaders.items())))
    print(f"    aggregate throughput: {result.throughput_ops:8.1f} ops/s "
          f"({result.completed} ops in the steady window)")
    for shard, ops in sorted(result.per_shard_throughput.items()):
        print(f"      shard {shard}: {ops:7.1f} ops/s")
    print(f"    write p50/p90: {result.write_latency.get('p50', 0):.1f}/"
          f"{result.write_latency.get('p90', 0):.1f} ms")
    checks = ("all linearizable" if result.linearizable
              else f"VIOLATIONS: {result.violations}")
    print(f"    per-shard history checks: {checks}; "
          f"redirects={result.redirects}, misrouted applies={result.filtered}")
    print()


def main():
    workload = WorkloadConfig(read_fraction=0.1, conflict_rate=0.0,
                              value_size=4096)
    base = ShardedSpec(
        protocol="raft", num_shards=4, clients_per_region=40,
        workload=workload, duration_s=5.0, warmup_s=1.5, cooldown_s=0.5,
        check_history=True, seed=11,
    )

    print("== one group (the paper's deployment): the leader is the ceiling ==")
    show(run_sharded_experiment(base.with_(num_shards=1)))

    print("== 4 shards, leaders spread across regions ==")
    spread = run_sharded_experiment(base.with_(placement="spread"))
    show(spread)

    print("== 4 shards, every leader colocated in Oregon ==")
    colocated = run_sharded_experiment(base.with_(placement="colocated"))
    show(colocated)

    gain = spread.throughput_ops / max(colocated.throughput_ops, 1e-9)
    print(f"spread/colocated aggregate throughput: {gain:.2f}x — leader "
          "placement is the scaling knob sharding exposes")


if __name__ == "__main__":
    main()
