#!/usr/bin/env python
"""Host-multiplexed groups: one machine per region, eight Raft groups on
it, and the store-level transport that makes colocation pay.

The paper's Figure 9c/10a ceiling is the leader's per-message CPU work.
Sharding multiplies leaders, but parking all of them on one region's
machine multiplies the header work on that machine instead — unless the
transport amortizes it, the way TiKV/CockroachDB batch all their raft
groups' traffic per destination store.  `ShardedSpec(hosts_per_site=1)`
builds that machine layout; `coalesce=True` turns on the `GroupMux`:
every flush tick, all messages to the same destination host ride ONE
envelope (one per-message header for the lot), and the eight colocated
leaders' empty heartbeats merge into one host beacon.

This example runs the same saturated cluster twice — identical machines,
load, and protocol; only the transport differs — then prints the A/B and
the coalescing counters, and ends with a machine failure: crashing the
leaders' host takes all eight groups down AT ONCE, and all eight elect
new leaders elsewhere and keep serving.

Run:  PYTHONPATH=src python examples/coalesce_kv.py
"""

from repro.shard import Nemesis, ShardedCluster, ShardedSpec
from repro.sim.units import ms
from repro.workload.ycsb import WorkloadConfig


def spec(coalesce: bool) -> ShardedSpec:
    return ShardedSpec(
        protocol="raft",
        num_shards=8,
        placement="colocated",          # every leader in Oregon...
        hosts_per_site=1,               # ...on ONE machine per region
        coalesce=coalesce,
        coalesce_flush_interval=int(ms(2)),
        clients_per_region=60,
        workload=WorkloadConfig(read_fraction=0.1, value_size=8),
        duration_s=5.0, warmup_s=1.5, cooldown_s=0.5,
        seed=7, check_history=True, site_uplink_factor=None,
    )


def main():
    results = {}
    for mode in (False, True):
        results[mode] = ShardedCluster(spec(mode)).run()
    off, on = results[False], results[True]
    print(f"coalescing off: {off.throughput_ops:8.1f} ops/s "
          f"(linearizable: {off.linearizable})")
    print(f"coalescing on:  {on.throughput_ops:8.1f} ops/s "
          f"(linearizable: {on.linearizable})  "
          f"-> {on.throughput_ops / off.throughput_ops:.2f}x")
    print(f"  envelopes={on.counters['coalesce_envelopes']} carried "
          f"messages={on.counters['coalesce_messages']} "
          f"(+{on.counters['coalesce_beacon_beats']} heartbeats merged "
          f"into {on.counters['coalesce_beacons']} beacons) — "
          f"{on.messages_per_envelope:.1f} messages per header paid")

    # The new crash unit: one box = eight groups.
    cluster = ShardedCluster(spec(True))
    nemesis = Nemesis(cluster, host_down_s=2.5)
    nemesis.host_kill_at(1.5, host="h0.oregon")
    result = cluster.run()
    print(f"\nhost_kill h0.oregon at t=1.5s: all 8 leaders died together; "
          f"cluster still served {result.completed} ops, "
          f"linearizable: {result.linearizable}")
    for shard, replicas in sorted(cluster.groups.items()):
        leader = next((r.name for r in replicas.values()
                       if r.alive and getattr(r, "is_leader", False)), "?")
        print(f"  g{shard}: new leader {leader}")


if __name__ == "__main__":
    main()
