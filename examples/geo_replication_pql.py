#!/usr/bin/env python
"""Paxos Quorum Leases across five regions (the Figure 9 scenario).

Runs the same geo-replicated workload against Raft (reads pay a WAN round
trip), Leader-Lease Raft* (only the leader reads locally) and Raft*-PQL
(everyone reads locally under quorum leases), then prints the paper-style
latency comparison.

Run:  python examples/geo_replication_pql.py
"""

from repro.bench.harness import ExperimentSpec, run_experiment
from repro.bench.report import FigureTable
from repro.workload.ycsb import WorkloadConfig

SYSTEMS = (
    ("Raft", "raft"),
    ("Raft*-LL", "leaderlease"),
    ("Raft*-PQL", "raftstar-pql"),
)


def main():
    table = FigureTable(
        figure="PQL demo",
        title="read/write p50 latency (ms) per system, 90% reads, 5% conflict",
        columns=["system", "read@leader", "read@followers",
                 "write@leader", "local reads"],
    )
    for label, protocol in SYSTEMS:
        result = run_experiment(ExperimentSpec(
            protocol=protocol,
            clients_per_region=6,
            duration_s=6.0,
            warmup_s=1.5,
            cooldown_s=0.5,
            workload=WorkloadConfig(read_fraction=0.9, conflict_rate=0.05),
            check_history=True,
            seed=11,
        ))
        assert result.violations == [], result.violations
        table.add_row(
            label,
            result.read_latency["leader"]["p50"],
            result.read_latency["followers"]["p50"],
            result.write_latency["leader"]["p50"],
            f"{result.local_read_fraction:.0%}",
        )
    print(table.render())
    print()
    print("What to see (paper §5.1):")
    print(" * Raft reads pay a WAN round trip everywhere (~64 / ~128 ms);")
    print(" * LL reads are ~1 ms at the leader only;")
    print(" * PQL reads are ~1 ms at every region — the quorum lease at work —")
    print("   while its writes get a little slower (they wait for all lease")
    print("   holders before committing).")


if __name__ == "__main__":
    main()
