#!/usr/bin/env python
"""Fault tolerance demo: crashes, partitions, and safety checking.

Drives a 5-replica Raft* cluster through a partition + double leader crash
while clients keep writing, then runs the safety checker over everything
every replica applied: committed entries never diverge and never disappear.

Run:  python examples/fault_tolerance.py
"""

from repro.bench.harness import Cluster, ExperimentSpec
from repro.protocols.raft import Role
from repro.sim.units import sec, to_sec
from repro.workload.ycsb import WorkloadConfig


def leader_of(cluster):
    for name, replica in cluster.replicas.items():
        if replica.alive and replica.role is Role.LEADER:
            return name
    return None


def main():
    spec = ExperimentSpec(
        protocol="raftstar",
        clients_per_region=3,
        duration_s=30.0,
        warmup_s=1.0,
        cooldown_s=1.0,
        workload=WorkloadConfig(read_fraction=0.2, conflict_rate=0.1),
        check_history=True,
        seed=9,
    )
    cluster = Cluster(spec)
    sim = cluster.sim

    def status(note):
        leader = leader_of(cluster)
        commits = {n.replace("r_", ""): r.commit_index
                   for n, r in cluster.replicas.items()}
        print(f"t={to_sec(sim.now):5.1f}s  {note:<42} leader={leader} "
              f"commit={commits}")

    sim.run(until=sec(4))
    status("steady state")

    print("\n-- partition Ireland + Seoul away --")
    cluster.network.partition(["r_ireland", "r_seoul"],
                              ["r_oregon", "r_ohio", "r_canada"])
    sim.run(until=sec(8))
    status("minority partitioned; majority continues")

    print("\n-- crash the leader --")
    victim = leader_of(cluster)
    cluster.replicas[victim].crash()
    sim.run(until=sec(14))
    status(f"{victim} crashed; new election done")

    print("\n-- heal the partition, recover the crashed node --")
    cluster.network.heal()
    cluster.replicas[victim].recover()
    sim.run(until=sec(20))
    status("healed; everyone catching up")

    print("\n-- crash the new leader too --")
    second = leader_of(cluster)
    cluster.replicas[second].crash()
    sim.run(until=sec(26))
    status(f"{second} crashed; another election")

    cluster.replicas[second].recover()
    result = cluster.run()  # drains to duration_s and computes aggregates

    print(f"\ncompleted client ops in steady window: {result.completed}")
    violations = cluster.checker.check_prefix_agreement()
    print(f"committed-prefix agreement violations: {len(violations)}")
    assert not violations, violations[:3]
    stores = {n: len(r.store.snapshot()) for n, r in cluster.replicas.items()}
    print(f"keys per replica store: {stores}")
    print("\nSafety held through a partition and two leader crashes.")


if __name__ == "__main__":
    main()
