#!/usr/bin/env python
"""Live resharding: split 2 Raft groups into 4 under load, losing nothing.

PR 1's sharded layer multiplied leaders but froze the partition map at
construction.  This example runs the follow-on: an epoch-versioned map, a
2 -> 4 split triggered mid-run, and key-range migration — records plus
at-most-once dedup state — through the donor and recipient groups'
committed logs, while closed-loop clients keep hammering 4 KB writes.

Watch for three things in the output:

* the throughput timeline dips while ranges migrate, then recovers past
  the 2-shard ceiling once 4 leaders share the load;
* the ack accounting: zero lost and zero duplicated acknowledgements
  across the epoch change (clients repair their routing tables from the
  maps servers ship with redirects);
* every per-shard history — including the two groups spun up mid-run —
  checks linearizable.

Run:  PYTHONPATH=src python examples/reshard_kv.py
"""

from repro.shard import ReshardSpec, run_reshard_experiment
from repro.workload.ycsb import WorkloadConfig


def main():
    spec = ReshardSpec(
        protocol="raft",
        num_shards=2,           # before the split
        reshard_to=4,           # after
        reshard_at_s=4.0,       # trigger mid-run, under load
        placement="spread",
        clients_per_region=36,
        workload=WorkloadConfig(read_fraction=0.1, conflict_rate=0.0,
                                value_size=4096),
        duration_s=10.0, warmup_s=1.8, cooldown_s=0.5,
        seed=11, check_history=True,
    )
    print(f"== live reshard {spec.num_shards} -> {spec.reshard_to} at "
          f"t={spec.reshard_at_s:.1f}s, 4 KB writes, spread leaders ==\n")
    result = run_reshard_experiment(spec)

    print("throughput timeline (0.5 s buckets):")
    done_s = result.migration_completed_s or float("inf")
    for start, ops in result.timeline:
        if start < spec.reshard_at_s:
            phase = "pre-split"
        elif start < done_s:
            phase = "MIGRATING"
        else:
            phase = "post-split"
        bar = "#" * int(ops / 25)
        print(f"  t={start:4.1f}s  {ops:7.1f} ops/s  {phase:<10} {bar}")

    print(f"\nsteady state: {result.pre_throughput:.1f} ops/s on 2 shards -> "
          f"{result.post_throughput:.1f} ops/s on 4 "
          f"({result.post_throughput / max(result.pre_throughput, 1e-9):.2f}x)")
    print(f"migration: {result.moves} key ranges in {result.migration_ms:.0f} ms "
          f"(epoch {result.final_epoch})")
    print(f"acks: {result.completed} completed, {result.acks_lost} lost, "
          f"{result.acks_duplicated} duplicated, "
          f"{result.duplicate_executions} writes executed twice")
    print(f"routing: {result.redirects} redirects, {result.capped_redirects} "
          f"hit the hop cap, {result.filtered} boundary commands bounced at "
          f"apply and re-routed")
    print("per-shard history checks: "
          + ("all linearizable across the epoch change" if result.linearizable
             else f"VIOLATIONS: {result.violations}"))


if __name__ == "__main__":
    main()
