#!/usr/bin/env python
"""The paper's core contribution, end to end.

1. The Figure 4 warm-up: port the size-tracking optimization from a
   key-value store (A) to a log-structured store (B), and model-check every
   obligation.
2. The real thing: verify Raft* refines MultiPaxos under the Figure 3
   mapping, show plain Raft does NOT (with the erasing counterexample),
   then generate Raft*-PQL and Coordinated Raft* mechanically and check the
   Figure 5 diagram for both.

Run:  python examples/port_optimization.py
"""

from repro.core.explorer import Explorer
from repro.core.optimization import diff_optimization
from repro.core.refinement import check_refinement, projection_mapping
from repro.specs import (
    coorpaxos,
    coorraft,
    kvexample as kv,
    mapping as fig3,
    multipaxos as mp,
    pql,
    raft as plain_raft,
    raftstar as rs,
    rql,
)


def figure_4_warmup():
    print("=" * 72)
    print("Figure 4: porting the size-tracking optimization from the KV")
    print("store (A) to the log store (B)")
    print("=" * 72)

    A, B, Ad = kv.kv_store(), kv.log_store(), kv.kv_store_sized()
    print("\n1. B refines A:",
          check_refinement(B, A, kv.log_to_kv_mapping()).summary())

    diff = diff_optimization(A, Ad)
    print("2. classify the optimization:", diff.summary())

    Bd = kv.log_store_sized()
    print("3. generated B-delta actions:",
          ", ".join(a.name for a in Bd.actions))
    from repro.core.porting import (
        ported_to_optimized_mapping,
        ported_to_target_mapping,
    )
    print("4.", check_refinement(
        Bd, Ad, ported_to_optimized_mapping(kv.port_spec(), A, Ad, B)).summary())
    print("5.", check_refinement(
        Bd, B, ported_to_target_mapping(B)).summary())
    result = Explorer(Bd, invariants={
        "size-counts-entries": kv.size_matches_nonempty_entries}).run()
    print(f"6. ported invariant holds over {result.states_visited} states "
          f"(complete={result.complete})")


def raft_paxos_connection():
    print()
    print("=" * 72)
    print("Section 3: the formal connection between Raft and Paxos")
    print("=" * 72)
    print()
    print(fig3.render())

    cfg = mp.default_config(n=3, values=("a", "b"), max_ballot=2, max_index=0)
    print("\nRaft* => MultiPaxos under the Figure 3 mapping:")
    print(" ", check_refinement(rs.build(cfg), mp.build(cfg),
                                rs.raftstar_to_multipaxos(cfg),
                                max_states=30_000, max_high_steps=3).summary())

    neg_cfg = mp.default_config(n=3, values=("a",), max_ballot=2, max_index=1)
    result = check_refinement(plain_raft.build(neg_cfg), mp.build(neg_cfg),
                              plain_raft.raft_to_multipaxos(neg_cfg),
                              max_states=15_000, max_high_steps=4)
    print("\nplain Raft => MultiPaxos:")
    print(" ", result.summary())
    failure = result.failures[0]
    before, after = failure.transition.state, failure.transition.next_state
    for acceptor in neg_cfg["acceptors"]:
        if len(after["rlog"][acceptor]) < len(before["rlog"][acceptor]):
            print(f"  counterexample: {failure.transition.describe()} makes "
                  f"{acceptor} ERASE {before['rlog'][acceptor]} -> "
                  f"{after['rlog'][acceptor]}")
            print("  (the erasing step the paper identifies: no MultiPaxos "
                  "action deletes an accepted value)")
            break


def port_the_case_studies():
    print()
    print("=" * 72)
    print("Section 4/5 case studies: mechanical ports")
    print("=" * 72)

    cfg = pql.default_config(n=3, values=("a",), max_ballot=1, max_index=0)
    diff = diff_optimization(mp.build(cfg), pql.build(cfg))
    print("\nPQL:", diff.summary())
    machine = rql.build(cfg)
    print("generated Raft*-PQL with actions:",
          ", ".join(a.name for a in machine.actions))
    print(" ", check_refinement(machine, rs.build(cfg),
                                rql.mapping_to_raftstar(cfg),
                                max_states=4_000).summary())
    print(" ", check_refinement(machine, pql.build(cfg),
                                rql.mapping_to_pql(cfg),
                                max_states=1_500, max_high_steps=4).summary())

    mcfg = coorpaxos.default_config(n=3, values=("nop", "v"),
                                    max_ballot=2, max_index=1)
    mdiff = diff_optimization(mp.build(mcfg), coorpaxos.build(mcfg))
    print("\nMencius:", mdiff.summary())
    cr_machine = coorraft.build(mcfg)
    accept = cr_machine.action("AcceptEntries")
    ported = [c.name for c in accept.clauses if c.name.startswith("ported")]
    print("the port spliced into AcceptEntries:", ", ".join(ported))
    print("  (Phase2b's changes land on every implied step — the case "
          "hand-porters miss, §4.4)")
    print(" ", check_refinement(cr_machine, rs.build(mcfg),
                                coorraft.mapping_to_raftstar(mcfg),
                                max_states=5_000).summary())
    print(" ", check_refinement(cr_machine, coorpaxos.build(mcfg),
                                coorraft.mapping_to_coorpaxos(mcfg),
                                max_states=2_000, max_high_steps=4).summary())


if __name__ == "__main__":
    figure_4_warmup()
    raft_paxos_connection()
    port_the_case_studies()
