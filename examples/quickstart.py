#!/usr/bin/env python
"""Quickstart: a 5-region Raft* cluster on the simulator.

Builds the paper's geo-replicated deployment, runs a few client operations
through the replicated key-value store, and prints what happened — then
crashes the leader to show an election.

Run:  python examples/quickstart.py
"""

from repro.protocols.config import geo_cluster
from repro.protocols.messages import ClientReply, ClientRequest
from repro.protocols.raft import Role
from repro.protocols.raftstar import RaftStarReplica
from repro.protocols.types import Command, OpType
from repro.sim.events import Simulator
from repro.sim.network import Network
from repro.sim.node import Node, NodeCosts
from repro.sim.rng import SplitRng
from repro.sim.topology import ec2_five_regions
from repro.sim.units import ms, to_ms


class DemoClient(Node):
    """A client that prints replies as they come back."""

    def __init__(self, name, sim, network, site):
        super().__init__(name, sim, network, site=site,
                         costs=NodeCosts(per_message=0, per_command=0, per_byte=0))
        self.sent_at = {}
        self.seq = 0

    def put(self, server, key, value):
        self.seq += 1
        command = Command(op=OpType.PUT, key=key, value=value,
                          client_id=self.name, seq=self.seq)
        self.sent_at[command.request_id] = self.sim.now
        self.send(server, ClientRequest(command=command))

    def get(self, server, key):
        self.seq += 1
        command = Command(op=OpType.GET, key=key, client_id=self.name, seq=self.seq)
        self.sent_at[command.request_id] = self.sim.now
        self.send(server, ClientRequest(command=command))

    def on_message(self, src, message):
        if isinstance(message, ClientReply):
            latency = to_ms(self.sim.now - self.sent_at[message.request_id])
            kind = "GET" if message.value is not None or message.local_read else "op"
            print(f"  t={to_ms(self.sim.now):8.1f}ms  reply from {src:<10} "
                  f"ok={message.ok} value={message.value!r}  "
                  f"({latency:.1f} ms)")


def main():
    sim = Simulator()
    topology = ec2_five_regions()
    network = Network(sim, topology, rng=SplitRng(42))
    config = geo_cluster(topology.sites, initial_leader="r_oregon")

    replicas = {name: RaftStarReplica(name, sim, network, config)
                for name in config.names}
    client = DemoClient("demo-client", sim, network, site="oregon")
    seoul_client = DemoClient("seoul-client", sim, network, site="seoul")

    print("== writes through the Oregon leader ==")
    client.put("r_oregon", "greeting", "hello from oregon")
    sim.run(until=ms(200))

    print("== a write from Seoul (forwarded to the leader: 2 WAN trips) ==")
    seoul_client.put("r_seoul", "greeting", "hello from seoul")
    sim.run(until=ms(600))

    print("== a linearizable read (through the log) ==")
    client.get("r_oregon", "greeting")
    sim.run(until=ms(800))

    print("== crash the leader; Raft* elects a new one and keeps the data ==")
    replicas["r_oregon"].crash()
    sim.run(until=ms(4000))
    new_leader = next(r for r in replicas.values()
                      if r.alive and r.role is Role.LEADER)
    print(f"  new leader: {new_leader.name} (term {new_leader.current_term})")
    print(f"  committed value survived: "
          f"{new_leader.store.read_local('greeting')!r}")

    seoul_client.get(new_leader.name, "greeting")
    sim.run(until=ms(5000))

    print("\nall replicas' commit state:")
    for name, replica in replicas.items():
        status = "up" if replica.alive else "down"
        print(f"  {name:<12} {status:<5} commit_index={replica.commit_index:>3} "
              f"log={len(replica.log):>3} entries")


if __name__ == "__main__":
    main()
