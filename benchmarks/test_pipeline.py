"""Pipelined sessions and open-loop load (beyond the paper's closed loop).

The paper's throughput figures are closed-loop: every client has exactly
one outstanding request, so the measured number is as much a property of
the client fleet as of the protocol (Marandi et al. show in-flight client
requests are the dominant Paxos throughput knob).  The session API makes
the window explicit: the depth sweep shows a FIXED small fleet saturating
the leader as the window deepens, and the open-loop curve shows the
latency knee a closed loop cannot produce — offered load keeps arriving
when the server falls behind, so queueing delay becomes visible.
"""

import pytest

from benchmarks.conftest import bench_scale
from repro.bench import experiments as ex


@pytest.mark.slow
def test_pipeline_depth_sweep(benchmark, save_figure):
    table = benchmark.pedantic(
        ex.pipeline_depth_sweep, kwargs={"scale": bench_scale()},
        rounds=1, iterations=1)
    save_figure("pipeline_depth_sweep", table.render())

    # The acceptance bar: at equal client count, depth-8 sessions at least
    # double depth-1 throughput on both the Raft and MultiPaxos rows.
    for system in ("Raft", "MultiPaxos"):
        assert table.cell(system, "depth 8") >= 2.0 * table.cell(system, "depth 1")

    # Monotone in depth until saturation (generous slack for the last
    # point, where the leader may already be CPU-bound).
    for system in ("Raft", "MultiPaxos", "Raft*-PQL (lease reads)"):
        cells = [table.cell(system, f"depth {d}") for d in (1, 2, 4, 8)]
        for prev, nxt in zip(cells, cells[1:]):
            assert nxt >= 0.9 * prev
        # Every pipelined run's history — lease-local reads included on
        # the PQL row — passed the FULL checker.
        assert table.cell(system, "linearizable") == "yes"


@pytest.mark.slow
def test_pipeline_open_loop_curve(benchmark, save_figure):
    table = benchmark.pedantic(
        ex.pipeline_open_loop, kwargs={"scale": bench_scale()},
        rounds=1, iterations=1)
    save_figure("pipeline_open_loop", table.render())

    loads = [float(row[0]) for row in table.rows]
    for label in ("Raft", "MultiPaxos"):
        achieved = [table.cell(f"{load:g}", f"{label} ops/s")
                    for load in loads]
        mean_ms = [table.cell(f"{load:g}", f"{label} mean ms")
                   for load in loads]
        # Below the knee the system keeps up (achieved tracks offered);
        # past it the curve saturates: the top point gains little over
        # its predecessor while its latency blows up.
        assert achieved[0] >= 0.75 * loads[0]
        assert achieved[-1] <= 1.05 * max(achieved)
        assert mean_ms[-1] > 3.0 * mean_ms[0]   # the knee is visible
        # Latency is monotone-ish in offered load.
        assert mean_ms[-1] == max(mean_ms)
    # Every open-loop run linearizable, queueing delay included.
    for load in loads:
        assert table.cell(f"{load:g}", "linearizable") == "yes"
