"""The coordinator-failover figure: machine kills under both coordinator
planes, failover latency measured from host kill to committed takeover.

The acceptance claim of the control-plane design (DESIGN.md §11): a
host_kill of the ACTIVE coordinator under load completes the run with
zero lost/duplicated acks, strict serializability / linearizability, and
failover in milliseconds — the machine stays dark for seconds, so the
run finishing at all proves a hot standby took over through the
replicated decision log, not that the victim restarted.
"""

import math

import pytest

from benchmarks.conftest import bench_scale
from repro.bench import experiments as ex


@pytest.mark.slow
def test_coordinator_failover_figure(save_figure):
    table, summary = ex.coordinator_failover(bench_scale())
    save_figure("coordinator_failover", table.render())

    # Every seed failed over in BOTH planes (a NaN latency would mean the
    # takeover never happened and the run limped through on the restart).
    assert all(not math.isnan(v) for v in summary["txn_failover_ms"])
    assert all(not math.isnan(v) for v in summary["reshard_failover_ms"])
    for result in summary["txn_results"]:
        assert result.failovers > 0
        assert result.safe, ex._txn_safety(result)
        assert result.committed_total > 0 and result.commits_2pc > 0
    for result in summary["reshard_results"]:
        assert result.failovers > 0
        assert result.reshard_completed
        assert result.acks_lost == 0
        assert result.acks_duplicated == 0
        assert result.duplicate_executions == 0
        assert result.linearizable

    # The headline: lease-path failover is sub-second.  Seeds whose kill
    # also takes the control-log leader's host pay one election more, so
    # the bound is on the sweep's BEST case per plane.
    assert min(summary["txn_failover_ms"]) < 1000.0
    assert min(summary["reshard_failover_ms"]) < 1000.0
