"""Figure 9: Raft*-PQL vs LL vs Raft vs Raft* (§5.1)."""

import pytest

from benchmarks.conftest import bench_scale
from repro.bench import experiments as ex


def test_fig9a_read_latency(benchmark, save_figure):
    scale = bench_scale()
    reads, writes = benchmark.pedantic(
        ex.fig9_latency, kwargs={"scale": scale}, rounds=1, iterations=1)
    save_figure("fig9a_read_latency", reads.render())
    save_figure("fig9b_write_latency", writes.render())

    # Shape claims (paper §5.1): PQL reads local everywhere; LL local only
    # at the leader; Raft/Raft* pay a WAN round trip everywhere.
    assert reads.cell("Raft*-PQL", "followers p50") < 5.0
    assert reads.cell("Raft*-PQL", "leader p50") < 5.0
    assert reads.cell("Raft*-LL", "leader p50") < 5.0
    assert reads.cell("Raft*-LL", "followers p50") > 20.0
    assert reads.cell("Raft", "leader p50") > 50.0
    assert abs(reads.cell("Raft", "followers p50")
               - reads.cell("Raft*", "followers p50")) < 40.0

    # Figure 9b: PQL writes wait for lease holders.
    assert (writes.cell("Raft*-PQL", "leader p50")
            > writes.cell("Raft", "leader p50"))


@pytest.mark.slow
def test_fig9c_peak_throughput(benchmark, save_figure):
    scale = bench_scale()
    table = benchmark.pedantic(
        ex.fig9c_peak_throughput, kwargs={"scale": scale}, rounds=1, iterations=1)
    save_figure("fig9c_peak_throughput", table.render())

    # Raft / Raft* / LL roughly alike (leader CPU bound); PQL wins at high
    # read percentages and the advantage grows from 90% to 99%.
    raft_90 = table.cell("Raft", "90% reads")
    assert abs(table.cell("Raft*", "90% reads") - raft_90) / raft_90 < 0.3
    assert table.cell("Raft*-PQL", "90% reads") > 1.4 * raft_90
    speedup_90 = table.cell("Raft*-PQL", "90% reads") / raft_90
    speedup_99 = (table.cell("Raft*-PQL", "99% reads")
                  / table.cell("Raft", "99% reads"))
    assert speedup_99 > speedup_90


@pytest.mark.slow
def test_fig9d_speedup_vs_conflict(benchmark, save_figure):
    scale = bench_scale()
    table = benchmark.pedantic(
        ex.fig9d_speedup,
        kwargs={"scale": scale, "conflict_rates": (0.0, 0.1, 0.3, 0.5)},
        rounds=1, iterations=1)
    save_figure("fig9d_speedup", table.render())
    # speedup decreases as the conflict rate rises
    assert table.cell("0%", "speedup") > table.cell("50%", "speedup")
