"""Appendix B/C artifacts as benchmarks: every refinement obligation of the
porting pipeline (Figure 5), timed.

These are the machine-checked counterparts of the paper's TLAPS proofs,
run on finite instances.
"""

import pytest

from repro.core.explorer import Explorer
from repro.core.refinement import check_refinement, projection_mapping
from repro.specs import (
    coorpaxos as cp,
    coorraft as cr,
    multipaxos as mp,
    pql,
    raft as rf,
    raftstar as rs,
    rql,
)


def test_appendix_c_raftstar_refines_multipaxos(benchmark, save_figure):
    cfg = mp.default_config(n=3, values=("a", "b"), max_ballot=2, max_index=0)

    def check():
        return check_refinement(rs.build(cfg), mp.build(cfg),
                                rs.raftstar_to_multipaxos(cfg),
                                max_states=30_000, max_high_steps=3)

    result = benchmark.pedantic(check, rounds=1, iterations=1)
    assert result.ok and result.complete
    save_figure("appendix_c_refinement", result.summary())


def test_section3_raft_does_not_refine_multipaxos(benchmark, save_figure):
    cfg = mp.default_config(n=3, values=("a",), max_ballot=2, max_index=1)

    def check():
        return check_refinement(rf.build(cfg), mp.build(cfg),
                                rf.raft_to_multipaxos(cfg),
                                max_states=15_000, max_high_steps=4)

    result = benchmark.pedantic(check, rounds=1, iterations=1)
    assert not result.ok
    lines = [result.summary()]
    for failure in result.failures[:2]:
        lines.append(failure.describe())
    save_figure("section3_negative_result", "\n".join(lines))


@pytest.mark.slow
def test_figure5_rql_obligations(benchmark, save_figure):
    cfg = pql.default_config(n=3, values=("a",), max_ballot=1, max_index=0)

    def check():
        machine = rql.build(cfg)
        to_b = check_refinement(machine, rs.build(cfg),
                                rql.mapping_to_raftstar(cfg), max_states=4_000)
        to_ad = check_refinement(machine, pql.build(cfg),
                                 rql.mapping_to_pql(cfg),
                                 max_states=1_500, max_high_steps=4)
        inv = Explorer(machine, invariants=rql.lease_invariants(cfg),
                       max_states=4_000).run()
        return to_b, to_ad, inv

    to_b, to_ad, inv = benchmark.pedantic(check, rounds=1, iterations=1)
    assert to_b.ok and to_ad.ok and inv.ok
    save_figure("figure5_rql", "\n".join([
        to_b.summary(), to_ad.summary(),
        f"lease invariants: ok over {inv.states_visited} states",
    ]))


@pytest.mark.slow
def test_figure5_coorraft_obligations(benchmark, save_figure):
    cfg = cp.default_config(n=3, values=("nop", "v"), max_ballot=2, max_index=1)

    def check():
        machine = cr.build(cfg)
        to_b = check_refinement(machine, rs.build(cfg),
                                cr.mapping_to_raftstar(cfg), max_states=5_000)
        to_ad = check_refinement(machine, cp.build(cfg),
                                 cr.mapping_to_coorpaxos(cfg),
                                 max_states=2_000, max_high_steps=4)
        inv = Explorer(machine, invariants=cr.mencius_invariants(cfg),
                       max_states=5_000).run()
        return to_b, to_ad, inv

    to_b, to_ad, inv = benchmark.pedantic(check, rounds=1, iterations=1)
    assert to_b.ok and to_ad.ok and inv.ok
    save_figure("figure5_coorraft", "\n".join([
        to_b.summary(), to_ad.summary(),
        f"mencius invariants: ok over {inv.states_visited} states",
    ]))


def test_explorer_throughput(benchmark):
    """Model-checker performance: states/second on the Raft* spec."""
    cfg = mp.default_config(n=3, values=("a",), max_ballot=2, max_index=0)

    def explore():
        return Explorer(rs.build(cfg), max_states=5_000).run()

    result = benchmark.pedantic(explore, rounds=3, iterations=1)
    assert result.states_visited > 0
