"""Figure 3: the Raft* <-> MultiPaxos mapping table, regenerated and
re-verified (the refinement check is the 'measurement' here)."""

from repro.core.refinement import check_refinement
from repro.specs import mapping, multipaxos as mp, raftstar as rs


def test_fig3_mapping(benchmark, save_figure):
    cfg = mp.default_config(n=3, values=("a", "b"), max_ballot=2, max_index=0)

    def verify():
        return check_refinement(
            rs.build(cfg), mp.build(cfg), rs.raftstar_to_multipaxos(cfg),
            max_states=30_000, max_high_steps=3,
        )

    result = benchmark.pedantic(verify, rounds=1, iterations=1)
    assert result.ok and result.complete
    text = mapping.render() + "\n\n" + result.summary()
    save_figure("fig3_mapping", text)


def test_fig3_function_table_consistent_with_port_input():
    from repro.specs.rql import correspondence

    assert mapping.spec_correspondence() == correspondence()
