"""Figure 6: the Paxos-variant landscape, regenerated; the two case-study
optimizations are re-classified mechanically as the 'measurement'."""

from repro.core.optimization import diff_optimization
from repro.specs import coorpaxos as cp, multipaxos as mp, pql, variants


def test_fig6_variants(benchmark, save_figure):
    def classify():
        pql_cfg = pql.default_config()
        mencius_cfg = cp.default_config()
        return (
            diff_optimization(mp.build(pql_cfg), pql.build(pql_cfg)),
            diff_optimization(mp.build(mencius_cfg), cp.build(mencius_cfg)),
        )

    pql_diff, mencius_diff = benchmark.pedantic(classify, rounds=1, iterations=1)
    assert pql_diff.non_mutating and mencius_diff.non_mutating
    text = "\n".join([
        variants.render(),
        "",
        "mechanical classification of the two case studies:",
        f"  {pql_diff.summary()}",
        f"  {mencius_diff.summary()}",
    ])
    save_figure("fig6_variants", text)
    assert len(variants.port_candidates()) == 7
