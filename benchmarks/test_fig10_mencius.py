"""Figure 10: Raft*-Mencius vs Raft (§5.2)."""

import pytest

from benchmarks.conftest import bench_scale
from repro.bench import experiments as ex


@pytest.mark.slow
def test_fig10a_throughput_8b(benchmark, save_figure):
    table = benchmark.pedantic(
        ex.fig10a_throughput_8b, kwargs={"scale": bench_scale()},
        rounds=1, iterations=1)
    save_figure("fig10a_throughput_8b", table.render())
    last = table.columns[-1]
    # load balancing beats the single leader once the leader saturates
    assert table.cell("Raft*-M-0%", last) > 1.2 * table.cell("Raft-Oregon", last)
    # Raft and Raft* saturate together
    raft = table.cell("Raft-Oregon", last)
    assert abs(table.cell("Raft*-Oregon", last) - raft) / raft < 0.25


@pytest.mark.slow
def test_fig10b_throughput_4kb(benchmark, save_figure):
    table = benchmark.pedantic(
        ex.fig10b_throughput_4kb, kwargs={"scale": bench_scale()},
        rounds=1, iterations=1)
    save_figure("fig10b_throughput_4kb", table.render())
    last = table.columns[-1]
    # network-bound: Mencius uses every replica's NIC
    assert table.cell("Raft*-M-0%", last) > 1.5 * table.cell("Raft-Oregon", last)


def test_fig10c_latency_8b(benchmark, save_figure):
    table = benchmark.pedantic(
        ex.fig10c_latency_8b, kwargs={"scale": 1.0}, rounds=1, iterations=1)
    save_figure("fig10c_latency_8b", table.render())
    # Raft-Oregon's leader is the lowest-latency config of all
    oregon = table.cell("Raft-Oregon", "leader p50")
    for system in ("Raft*-M-100%", "Raft*-M-0%", "Raft-Seoul"):
        assert table.cell(system, "leader p50") >= oregon
    # M-100% waits for everyone's commit decisions; M-0% only for their
    # append/skip messages
    assert (table.cell("Raft*-M-100%", "leader p90")
            > table.cell("Raft*-M-0%", "leader p90"))
    # Seoul leaders are the worst single-leader placement
    assert table.cell("Raft-Seoul", "followers p90") == max(
        table.cell(s, "followers p90")
        for s in ("Raft-Oregon", "Raft*-Oregon", "Raft-Seoul"))


def test_fig10d_latency_4kb(benchmark, save_figure):
    table = benchmark.pedantic(
        ex.fig10d_latency_4kb, kwargs={"scale": 1.0}, rounds=1, iterations=1)
    save_figure("fig10d_latency_4kb", table.render())
    assert (table.cell("Raft*-M-100%", "leader p50")
            > table.cell("Raft*-M-0%", "leader p50"))
