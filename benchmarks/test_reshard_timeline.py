"""Live resharding under load (beyond the paper's static membership).

PR 1's sharded layer multiplied leaders but froze the partition map at
construction; reconfiguration is where Howard & Mortier locate the hard
consensus tradeoffs.  This figure runs the 2 -> 4 split *while clients
keep issuing 4 KB writes at saturation* and holds the layer to the
client-visible contract: no acknowledgement is lost or duplicated across
the epoch change, per-shard histories stay linearizable, and aggregate
throughput recovers to at least the pre-split level once migration lands.
"""

import pytest

from benchmarks.conftest import bench_scale
from repro.bench import experiments as ex
from repro.shard.cluster import run_reshard_experiment


@pytest.mark.slow
def test_reshard_live_split(benchmark, save_figure):
    spec = ex.reshard_spec(scale=bench_scale(), seed=1,
                           shards_from=2, shards_to=4)
    result = benchmark.pedantic(
        run_reshard_experiment, args=(spec,), rounds=1, iterations=1)
    save_figure("reshard_timeline", ex.reshard_table(result).render())

    # The migration ran and finished inside the run.
    assert result.reshard_completed
    assert result.moves == 3  # 2->4 split: one range from g0, two from g1
    assert result.final_epoch == 1

    # Zero lost and zero duplicated acknowledgements across the transition:
    # every sequence number a client burned was answered exactly once (bar
    # the final in-flight command per client)...
    assert result.acks_lost == 0
    assert result.acks_duplicated == 0
    # ...and — the check with teeth — no acknowledged write executed more
    # than once anywhere: on the final owner of every key, the store's
    # version count matches the distinct acknowledged PUTs (a retry that
    # re-executed on the new owner instead of hitting the migrated dedup
    # cache would show up here).
    assert result.duplicate_executions == 0

    # Every per-shard history — including the two groups spun up mid-run —
    # stays linearizable across the epoch boundary.
    assert set(result.violations) == {0, 1, 2, 3}
    assert result.linearizable

    # Doubling the groups relieves the 2-shard ceiling: steady throughput
    # after the migration at least recovers the pre-split level.
    assert result.post_throughput >= result.pre_throughput

    # The redirect machinery did real work (stale tables were repaired via
    # shipped maps, ping-pongs were capped), and nothing spun unbounded:
    # boundary bounces are a tiny fraction of total completions.
    assert result.redirects > 0
    assert result.capped_redirects <= result.redirects
    assert result.filtered <= 0.2 * result.completed
