"""Host-multiplexed cross-group coalescing (beyond the paper).

The paper's Figure 9c/10a bottleneck is the leader's per-message CPU work.
Sharding multiplies leaders, but colocating them on one machine multiplies
the header work on that machine's CPU instead.  The `GroupMux` transport
amortizes it the way multi-raft stores (TiKV, CockroachDB) do: one
envelope per destination host per flush tick, one merged heartbeat beacon
per host pair — so `NodeCosts.per_message` is paid once per envelope
instead of once per message.
"""

import pytest

from benchmarks.conftest import bench_scale
from repro.bench import experiments as ex


@pytest.mark.slow
def test_coalesce_amortization(benchmark, save_figure):
    table = benchmark.pedantic(
        ex.coalesce_figure, kwargs={"scale": bench_scale()},
        rounds=1, iterations=1)
    save_figure("coalesce", table.render())

    # The headline claim: with 8 colocated shards on one host per site,
    # coalescing beats the one-message-one-send transport by >= 1.3x.
    assert table.cell("on", "8 shards") >= 1.3 * table.cell("off", "8 shards")

    # And it wins by actually amortizing headers: each envelope carries at
    # least 2 protocol messages on average (>= 2x fewer per-message costs).
    assert table.cell("on", "msgs/envelope") >= 2.0

    # Same semantics on both transports: every shard's history stays
    # linearizable and no command reached a store that does not own it.
    assert table.cell("on", "linearizable") == "yes"
    assert table.cell("off", "linearizable") == "yes"

    # Coalescing never *loses* at any swept shard count once the host is
    # saturated (2+ groups on one machine).
    for col in ("2 shards", "4 shards", "8 shards"):
        assert table.cell("on", col) >= 0.95 * table.cell("off", col)
