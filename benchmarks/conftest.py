"""Benchmark-suite helpers.

Every benchmark regenerates one of the paper's tables/figures, prints it,
and saves it under `benchmarks/results/`.  `REPRO_BENCH_SCALE` (default 0.6)
scales client counts/durations: 1.0 reproduces the EXPERIMENTS.md numbers,
smaller values give quicker smoke runs with the same qualitative shapes.
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.6"))


@pytest.fixture
def save_figure():
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return save
