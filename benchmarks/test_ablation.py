"""Ablation benches for the design choices DESIGN.md calls out.

Each toggles one mechanism and shows the figure-level effect, at small
scale.
"""

import pytest

from benchmarks.conftest import bench_scale
from repro.bench.harness import ExperimentSpec, run_experiment
from repro.bench.report import FigureTable
from repro.workload.ycsb import WorkloadConfig


def _run(protocol, *, clients=10, read_fraction=0.9, conflict=0.05,
         mode=None, duration=4.0, config_mutator=None, seed=2):
    spec = ExperimentSpec(
        protocol=protocol, clients_per_region=clients, duration_s=duration,
        warmup_s=1.0, cooldown_s=0.5,
        workload=WorkloadConfig(read_fraction=read_fraction,
                                conflict_rate=conflict),
        execution_mode=mode, seed=seed,
    )
    from repro.bench.harness import Cluster
    cluster = Cluster(spec)
    if config_mutator is not None:
        config_mutator(cluster)
    return cluster.run()


def test_ablation_lease_write_wait(benchmark, save_figure):
    """PQL's write-latency cost comes from waiting on lease holders: with
    leases (and hence the wait), writes are slower than plain Raft*'s."""

    def run_pair():
        pql = _run("raftstar-pql")
        plain = _run("raftstar")
        return pql, plain

    pql, plain = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    table = FigureTable(
        figure="Ablation", title="lease-holder wait on the write path",
        columns=["system", "write p50 (leader)", "read p50 (followers)"],
    )
    table.add_row("Raft*-PQL (leases on)", pql.write_latency["leader"]["p50"],
                  pql.read_latency["followers"]["p50"])
    table.add_row("Raft* (no leases)", plain.write_latency["leader"]["p50"],
                  plain.read_latency["followers"]["p50"])
    save_figure("ablation_lease_wait", table.render())
    # the trade: slower writes buy local reads
    assert (pql.write_latency["leader"]["p50"]
            > plain.write_latency["leader"]["p50"])
    assert (pql.read_latency["followers"]["p50"]
            < plain.read_latency["followers"]["p50"])


def test_ablation_follower_forwarding_cost(benchmark, save_figure):
    """The 2-WAN-trip follower write path (etcd forwarding): follower
    latency ~= 2x leader latency under Raft."""

    def run_one():
        return _run("raft", read_fraction=0.0)

    result = benchmark.pedantic(run_one, rounds=1, iterations=1)
    leader = result.write_latency["leader"]["p50"]
    followers = result.write_latency["followers"]["p50"]
    table = FigureTable(
        figure="Ablation", title="follower forwarding = extra WAN trip",
        columns=["path", "write p50 (ms)"],
    )
    table.add_row("client -> leader", leader)
    table.add_row("client -> follower -> leader", followers)
    save_figure("ablation_forwarding", table.render())
    assert followers > 1.5 * leader


def test_ablation_mencius_skip_cadence(benchmark, save_figure):
    """M-0% latency is bounded by the farthest replica's skips: slowing the
    skip cadence slows commutative-mode replies."""
    from repro.sim.units import ms

    def slow_mutator(cluster):
        for replica in cluster.replicas.values():
            replica.config.skip_interval = ms(150)

    def run_pair():
        fast = _run("mencius", read_fraction=0.0, conflict=0.0,
                    mode="commutative")
        slow = _run("mencius", read_fraction=0.0, conflict=0.0,
                    mode="commutative", config_mutator=slow_mutator)
        return fast, slow

    fast, slow = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    table = FigureTable(
        figure="Ablation", title="Mencius skip cadence vs M-0% latency",
        columns=["skip interval", "write p90 (leader region, ms)"],
    )
    table.add_row("20 ms (default)", fast.write_latency["leader"]["p90"])
    table.add_row("150 ms", slow.write_latency["leader"]["p90"])
    save_figure("ablation_skip_cadence", table.render())
    assert (slow.write_latency["leader"]["p90"]
            >= fast.write_latency["leader"]["p90"])


@pytest.mark.slow
def test_ablation_cpu_model_drives_mencius_gain(benchmark, save_figure):
    """Mencius' peak-throughput win exists because the leader CPU is the
    bottleneck: with only a handful of clients (no saturation) the win
    disappears."""

    def run_four():
        low_m = _run("mencius", clients=4, read_fraction=0.0, conflict=0.0,
                     mode="commutative", duration=4.0)
        low_r = _run("raft", clients=4, read_fraction=0.0, duration=4.0)
        high_m = _run("mencius", clients=60, read_fraction=0.0, conflict=0.0,
                      mode="commutative", duration=5.0)
        high_r = _run("raft", clients=60, read_fraction=0.0, duration=5.0)
        return low_m, low_r, high_m, high_r

    low_m, low_r, high_m, high_r = benchmark.pedantic(run_four, rounds=1,
                                                      iterations=1)
    table = FigureTable(
        figure="Ablation", title="Mencius advantage appears at saturation",
        columns=["load", "Mencius ops/s", "Raft ops/s", "ratio"],
    )
    low_ratio = low_m.throughput_ops / max(low_r.throughput_ops, 1)
    high_ratio = high_m.throughput_ops / max(high_r.throughput_ops, 1)
    table.add_row("4 clients/region", low_m.throughput_ops,
                  low_r.throughput_ops, round(low_ratio, 2))
    table.add_row("60 clients/region", high_m.throughput_ops,
                  high_r.throughput_ops, round(high_ratio, 2))
    save_figure("ablation_cpu_saturation", table.render())
    assert high_ratio > low_ratio
