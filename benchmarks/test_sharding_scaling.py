"""Sharded multi-group scaling (beyond the paper's single group).

The paper's Figure 10b shows a single leader's NIC egress capping
throughput.  Sharding is the production answer: N groups over a hash-
partitioned keyspace multiply leaders, and *where* those leaders live
decides whether the bottleneck actually disappears — `spread` leaders use
every region's uplink, `colocated` leaders re-create the single-region
ceiling one level up.
"""

import pytest

from benchmarks.conftest import bench_scale
from repro.bench import experiments as ex


@pytest.mark.slow
def test_sharding_scaling(benchmark, save_figure):
    table = benchmark.pedantic(
        ex.sharding_scaling, kwargs={"scale": bench_scale()},
        rounds=1, iterations=1)
    save_figure("sharding_scaling", table.render())

    # Sharding relieves the single-leader ceiling: 4 groups with spread
    # leaders commit at least 2.5x the single-group baseline.
    base = table.cell("spread", "1 shard")
    assert table.cell("spread", "4 shards") >= 2.5 * base

    # The spread curve climbs to saturation and then plateaus: each point
    # at least matches its predecessor up to measurement slack (the 8-shard
    # point adds capacity the fixed offered load may no longer fill).
    curve = [table.cell("spread", col)
             for col in ("1 shard", "2 shards", "4 shards", "8 shards")]
    for prev, nxt in zip(curve, curve[1:]):
        assert nxt >= 0.9 * prev

    # Leader placement is the knob: once there are enough groups to
    # saturate one region's uplink, colocating every leader there caps
    # aggregate throughput below spread.
    for col in ("4 shards", "8 shards"):
        assert table.cell("spread", col) >= table.cell("colocated", col)
    assert table.cell("spread", "4 shards") > 1.5 * table.cell("colocated", "4 shards")

    # Every shard's history checked linearizable at every point, and no
    # command ever reached a store that does not own its key.
    assert table.cell("spread", "linearizable") == "yes"
    assert table.cell("colocated", "linearizable") == "yes"
