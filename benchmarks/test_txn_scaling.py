"""Cross-shard transactions: the `txn` figure and its acceptance claims.

Two claims carry this figure:

* at **0 % cross-shard** the transaction layer costs (almost) nothing —
  every transaction is one atomic command through the owning group, so
  op throughput stays within 10 % of the plain sharded deployment under
  the identical workload (it is usually *higher*: a closed-loop client
  gets txn_size operations per round trip);
* at **50 % cross-shard**, under a nemesis schedule that kills a shard
  leader mid-prepare, the coordinator mid-commit, and partitions another
  leader, every committed transaction still checks strictly serializable
  with zero lost/duplicated acknowledgements and zero re-executed writes
  — the property 2PC-through-the-log plus the logged decision buys.
"""

import pytest

from benchmarks.conftest import bench_scale
from repro.bench import experiments as ex
from repro.shard.cluster import ShardedSpec, run_sharded_experiment
from repro.shard.txn import run_txn_experiment


@pytest.mark.slow
def test_txn_scaling(benchmark, save_figure):
    scale = bench_scale()
    table = benchmark.pedantic(
        ex.txn_scaling, kwargs=dict(scale=scale, seed=1),
        rounds=1, iterations=1)
    save_figure("txn_scaling", table.render())
    # Every (ratio, shard-count) point passed the strict-serializability
    # check and the ack accounting.
    for row in table.rows:
        assert row[-1] == "yes", f"safety failed on row {row}"


@pytest.mark.slow
def test_txn_zero_cross_within_10pct_of_plain_sharded(save_figure):
    """The fast-path claim, measured head to head on 4 shards."""
    scale = bench_scale()
    spec = ex.txn_spec(scale, seed=1, num_shards=4, cross_shard_ratio=0.0)
    txn_result = run_txn_experiment(spec)
    plain = run_sharded_experiment(ShardedSpec(
        protocol=spec.protocol, num_shards=spec.num_shards,
        placement=spec.placement, clients_per_region=spec.clients_per_region,
        workload=spec.workload, duration_s=spec.duration_s,
        warmup_s=spec.warmup_s, cooldown_s=spec.cooldown_s, seed=spec.seed,
        check_history=True))
    save_figure("txn_vs_plain", "\n".join([
        "Txn fast path vs plain sharded (4 shards, identical workload)",
        f"plain sharded: {plain.throughput_ops:.1f} ops/s",
        f"txn 0% cross:  {txn_result.ops_throughput:.1f} ops/s "
        f"({txn_result.txn_throughput:.1f} txn/s x "
        f"{spec.txn_size} ops)",
    ]))
    assert txn_result.safe
    assert plain.linearizable
    # the acceptance bound: within 10% (in practice the txn path wins —
    # one round trip carries txn_size operations)
    assert txn_result.ops_throughput >= 0.9 * plain.throughput_ops


@pytest.mark.slow
def test_txn_nemesis_faults_keep_commits_exactly_once(save_figure):
    """The 50 %-cross trial under the figure's nemesis schedule."""
    table, result = ex.txn_faults(bench_scale(), seed=1)
    save_figure("txn_faults", table.render())
    # the schedule really fired: a leader kill and a coordinator kill
    assert any("leader_kill" in note for note in table.notes)
    assert any("coordinator_kill" in note for note in table.notes)
    assert result.recoveries >= 1
    # real transactional work committed through the faults
    assert result.committed_total > 0
    assert result.cross_shard > 0
    # ...and the contract held: nothing lost, nothing double-acked,
    # nothing re-executed, history strictly serializable
    assert result.acks_lost == 0
    assert result.acks_duplicated == 0
    assert result.duplicate_executions == 0
    assert result.strict_serializable
    assert all(not v for v in result.prefix_violations.values())
